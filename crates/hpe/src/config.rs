//! Compiling policies into hardware filter tables.
//!
//! The OEM derives policies with `polsec-core`; this module lowers the
//! CAN-facing subset into the HPE's approved lists:
//!
//! * `allow read/write on can:<id>` → an exact id entry,
//! * `allow … on can:0xLO-0xHI` → a **minimal id/mask cover** of the range
//!   ([`synthesize_id_mask_cover`] — the aligned-power-of-two decomposition
//!   used when programming real filter banks),
//! * `allow … on can:*` → a match-all entry,
//! * mode-conditioned rules are included only when their mode matches the
//!   configured mode (the HPE is reprogrammed on mode transitions),
//! * anything a whitelist cannot express (deny rules on `can:`, prefix
//!   patterns, non-numeric ids, state/rate conditions) is rejected loudly
//!   rather than silently dropped.

use crate::error::HpeError;
use crate::lists::ApprovedLists;
use polsec_core::{Action, Condition, Effect, Pattern, Policy};
use polsec_can::AcceptanceFilter;

/// Mask of valid bits in a standard (11-bit) CAN identifier.
const STD_MASK: u32 = 0x7FF;

/// Decomposes the inclusive range `[lo, hi]` into a minimal list of
/// `(id, mask)` pairs over an 11-bit space, where each pair covers the
/// aligned block `{ x : x & mask == id }`.
///
/// The greedy aligned-block decomposition is optimal for interval covers by
/// power-of-two blocks: at each step it takes the largest block that starts
/// at `lo`, is naturally aligned, and does not overshoot `hi`.
///
/// # Example
/// ```
/// use polsec_hpe::synthesize_id_mask_cover;
/// // 0x100..=0x1FF is one aligned 256-block
/// assert_eq!(synthesize_id_mask_cover(0x100, 0x1FF), vec![(0x100, 0x700)]);
/// // 0x101..=0x102 needs two singleton entries
/// assert_eq!(
///     synthesize_id_mask_cover(0x101, 0x102),
///     vec![(0x101, 0x7FF), (0x102, 0x7FF)]
/// );
/// ```
pub fn synthesize_id_mask_cover(lo: u32, hi: u32) -> Vec<(u32, u32)> {
    let (lo, hi) = (lo.min(STD_MASK), hi.min(STD_MASK));
    if lo > hi {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cur = lo;
    loop {
        // Largest power-of-two block aligned at `cur` that fits in [cur, hi].
        let mut size: u32 = 1;
        while cur % (size * 2) == 0 && cur + (size * 2 - 1) <= hi && size * 2 <= STD_MASK + 1 {
            size *= 2;
        }
        out.push((cur, STD_MASK & !(size - 1)));
        match cur.checked_add(size) {
            Some(next) if next <= hi => cur = next,
            _ => break,
        }
    }
    out
}

/// Whether a rule condition admits inclusion at the given operating mode.
///
/// Returns `Ok(true)` / `Ok(false)` for conditions the stateless hardware
/// can resolve at configuration time, `Err` for conditions it cannot
/// (state, rate, negation, conjunction).
fn condition_admits(cond: &Condition, mode: Option<&str>) -> Result<bool, String> {
    match cond {
        Condition::Always => Ok(true),
        Condition::InMode(m) => Ok(mode == Some(m.as_str())),
        Condition::AnyOf(cs) => {
            let mut any = false;
            for c in cs {
                any |= condition_admits(c, mode)?;
            }
            Ok(any)
        }
        other => Err(format!("condition '{other}' is not resolvable in hardware")),
    }
}

/// Compiles the CAN-facing rules of `policy` into approved lists for a node
/// operating in `mode`.
///
/// Only rules whose **object** namespace is `can` participate; rules about
/// other namespaces (assets, processes) are the software engine's business
/// and are skipped.
///
/// # Errors
/// [`HpeError::UnsupportedRule`] for deny rules on `can:`, non-numeric or
/// prefix patterns, or conditions hardware cannot resolve;
/// [`HpeError::ListFull`] when the cover exceeds `capacity`.
pub fn compile_policy_to_lists(
    policy: &Policy,
    mode: Option<&str>,
    capacity: usize,
) -> Result<ApprovedLists, HpeError> {
    let mut lists = ApprovedLists::with_capacity(capacity);
    for rule in policy.rules() {
        let object = rule.object();
        if object.namespace() != Some("can") {
            continue;
        }
        if rule.effect() == Effect::Deny {
            return Err(HpeError::UnsupportedRule {
                rule: rule.id().to_string(),
                reason: "whitelist hardware cannot express deny rules on can ids; \
                         restructure as allows"
                    .into(),
            });
        }
        let included = condition_admits(rule.condition(), mode).map_err(|reason| {
            HpeError::UnsupportedRule {
                rule: rule.id().to_string(),
                reason,
            }
        })?;
        if !included {
            continue;
        }
        let entries = pattern_entries(rule.id(), object.pattern())?;
        for action in [Action::Read, Action::Write] {
            if !rule.actions().contains(action) {
                continue;
            }
            for e in &entries {
                match action {
                    Action::Read => lists.add_read_entry(*e)?,
                    Action::Write => lists.add_write_entry(*e)?,
                    _ => unreachable!("loop only visits read/write"),
                }
            }
        }
    }
    Ok(lists)
}

fn pattern_entries(rule_id: &str, pattern: &Pattern) -> Result<Vec<AcceptanceFilter>, HpeError> {
    match pattern {
        Pattern::Any => Ok(vec![AcceptanceFilter::standard(0, 0)]),
        Pattern::Exact(name) => {
            let id = parse_can_id(name).ok_or_else(|| HpeError::UnsupportedRule {
                rule: rule_id.to_string(),
                reason: format!("'{name}' is not a numeric can id"),
            })?;
            Ok(vec![AcceptanceFilter::standard(id, STD_MASK)])
        }
        Pattern::IdRange { lo, hi } => Ok(synthesize_id_mask_cover(*lo, *hi)
            .into_iter()
            .map(|(id, mask)| AcceptanceFilter::standard(id, mask))
            .collect()),
        Pattern::Prefix(p) => Err(HpeError::UnsupportedRule {
            rule: rule_id.to_string(),
            reason: format!("prefix pattern '{p}*' has no id/mask encoding"),
        }),
    }
}

fn parse_can_id(s: &str) -> Option<u32> {
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        s.parse().ok()?
    };
    (v <= STD_MASK).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polsec_can::CanId;
    use polsec_core::dsl::parse_policy;

    fn covered_ids(pairs: &[(u32, u32)]) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..=STD_MASK)
            .filter(|x| pairs.iter().any(|(id, mask)| x & mask == id & mask))
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn cover_exactness_on_samples() {
        for (lo, hi) in [(0u32, 0u32), (5, 5), (0, 0x7FF), (0x100, 0x1FF), (3, 17), (0x7F0, 0x7FF)]
        {
            let pairs = synthesize_id_mask_cover(lo, hi);
            let expect: Vec<u32> = (lo..=hi).collect();
            assert_eq!(covered_ids(&pairs), expect, "range 0x{lo:X}-0x{hi:X}");
        }
    }

    #[test]
    fn cover_is_minimal_for_aligned_blocks() {
        assert_eq!(synthesize_id_mask_cover(0, 0x7FF).len(), 1);
        assert_eq!(synthesize_id_mask_cover(0x100, 0x1FF).len(), 1);
        assert_eq!(synthesize_id_mask_cover(0x100, 0x17F).len(), 1);
    }

    #[test]
    fn cover_worst_case_is_bounded() {
        // worst case for an 11-bit space is ≤ 2*11 entries
        for (lo, hi) in [(1u32, 0x7FE), (3, 0x7FD)] {
            let pairs = synthesize_id_mask_cover(lo, hi);
            assert!(pairs.len() <= 22, "{} entries", pairs.len());
            let expect: Vec<u32> = (lo..=hi).collect();
            assert_eq!(covered_ids(&pairs), expect);
        }
    }

    #[test]
    fn inverted_range_is_empty() {
        assert!(synthesize_id_mask_cover(5, 3).is_empty());
    }

    #[test]
    fn compile_exact_and_range_rules() {
        let p = parse_policy(
            r#"policy "hpe" version 1 {
                allow read on can:0x100 from *:*;
                allow write on can:0x200-0x20F from *:*;
                allow read, write on can:0x300 from *:*;
            }"#,
        )
        .unwrap();
        let lists = compile_policy_to_lists(&p, None, 16).unwrap();
        let sid = |v| CanId::standard(v).unwrap();
        assert!(lists.read().approves(sid(0x100)));
        assert!(!lists.write().approves(sid(0x100)));
        assert!(lists.write().approves(sid(0x205)));
        assert!(!lists.write().approves(sid(0x210)));
        assert!(lists.read().approves(sid(0x300)));
        assert!(lists.write().approves(sid(0x300)));
    }

    #[test]
    fn non_can_rules_are_skipped() {
        let p = parse_policy(
            r#"policy "mixed" version 1 {
                allow read on asset:ev-ecu from entry:sensors;
                allow read on can:0x10 from *:*;
            }"#,
        )
        .unwrap();
        let lists = compile_policy_to_lists(&p, None, 16).unwrap();
        assert_eq!(lists.read().len(), 1);
    }

    #[test]
    fn deny_rules_on_can_are_rejected() {
        let p = parse_policy(
            r#"policy "bad" version 1 {
                deny write on can:0x100 from *:*;
            }"#,
        )
        .unwrap();
        let err = compile_policy_to_lists(&p, None, 16).unwrap_err();
        assert!(matches!(err, HpeError::UnsupportedRule { .. }));
    }

    #[test]
    fn prefix_and_symbolic_patterns_rejected() {
        let p = parse_policy(
            r#"policy "bad" version 1 {
                allow read on can:engine from *:*;
            }"#,
        )
        .unwrap();
        assert!(matches!(
            compile_policy_to_lists(&p, None, 16),
            Err(HpeError::UnsupportedRule { .. })
        ));
        let p2 = parse_policy(
            r#"policy "bad2" version 1 {
                allow read on can:0x1* from *:*;
            }"#,
        )
        .unwrap();
        assert!(matches!(
            compile_policy_to_lists(&p2, None, 16),
            Err(HpeError::UnsupportedRule { .. })
        ));
    }

    #[test]
    fn mode_conditions_resolve_at_config_time() {
        let p = parse_policy(
            r#"policy "modal" version 1 {
                allow read on can:0x10 from *:* when mode == normal;
                allow read on can:0x20 from *:* when mode == fail-safe;
                allow read on can:0x30 from *:* when mode == normal || mode == fail-safe;
            }"#,
        )
        .unwrap();
        let sid = |v| CanId::standard(v).unwrap();
        let normal = compile_policy_to_lists(&p, Some("normal"), 16).unwrap();
        assert!(normal.read().approves(sid(0x10)));
        assert!(!normal.read().approves(sid(0x20)));
        assert!(normal.read().approves(sid(0x30)));
        let failsafe = compile_policy_to_lists(&p, Some("fail-safe"), 16).unwrap();
        assert!(!failsafe.read().approves(sid(0x10)));
        assert!(failsafe.read().approves(sid(0x20)));
        assert!(failsafe.read().approves(sid(0x30)));
        // no mode: only unconditional rules would apply (here none)
        let none = compile_policy_to_lists(&p, None, 16).unwrap();
        assert!(none.read().is_empty());
    }

    #[test]
    fn stateful_conditions_rejected() {
        let p = parse_policy(
            r#"policy "stateful" version 1 {
                allow read on can:0x10 from *:* when rate(x) <= 5;
            }"#,
        )
        .unwrap();
        let err = compile_policy_to_lists(&p, None, 16).unwrap_err();
        assert!(matches!(err, HpeError::UnsupportedRule { .. }));
        assert!(err.to_string().contains("hardware"));
    }

    #[test]
    fn capacity_overflow_reported() {
        // a worst-case range cover exceeding 4 entries
        let p = parse_policy(
            r#"policy "wide" version 1 {
                allow read on can:0x001-0x7FE from *:*;
            }"#,
        )
        .unwrap();
        assert!(matches!(
            compile_policy_to_lists(&p, None, 4),
            Err(HpeError::ListFull { capacity: 4 })
        ));
    }

    #[test]
    fn wildcard_compiles_to_match_all() {
        let p = parse_policy(
            r#"policy "open" version 1 {
                allow read on can:* from *:*;
            }"#,
        )
        .unwrap();
        let lists = compile_policy_to_lists(&p, None, 4).unwrap();
        assert!(lists.read().approves(CanId::standard(0x7FF).unwrap()));
        assert!(lists.read().approves(CanId::standard(0).unwrap()));
    }
}
