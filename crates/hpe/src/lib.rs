//! # polsec-hpe — the hardware-based policy engine
//!
//! The architecture of the paper's Fig. 4 (after Siddiqui et al., reference 21 of the paper): a
//! hardware block sitting **between the CAN controller and the transceiver**
//! that filters messages by identifier against approved lists, in both
//! directions:
//!
//! * [`ApprovedList`] — capacity-bounded banks of id/mask entries (the
//!   "approved reading and writing list"),
//! * [`DecisionBlock`] — compares a message id against a list and grants or
//!   blocks, with a cycle-cost model ([`CostModel`]) for the overhead
//!   experiments,
//! * [`HardwarePolicyEngine`] — the complete engine, implementing
//!   `polsec-can`'s [`Interposer`](polsec_can::node::Interposer) seam so it
//!   interposes transparently on any [`CanNode`](polsec_can::CanNode),
//! * [`config`] — compiles `polsec-core` policies into filter tables,
//!   including minimal id/mask cover synthesis for id ranges,
//! * tamper model — firmware-facing reconfiguration attempts **always
//!   fail** and are counted; the only write path is an OEM-signed bundle
//!   ([`HardwarePolicyEngine::apply_signed_config`]).
//!
//! The crucial security property, tested here and exercised end-to-end in
//! the workspace integration tests: *compromised firmware can clear the
//! controller's software filters but has no code path that touches the
//! HPE's lists.*
//!
//! # Example
//!
//! ```
//! use polsec_can::{CanFrame, CanId, CanNode};
//! use polsec_hpe::{ApprovedLists, HardwarePolicyEngine};
//!
//! let mut lists = ApprovedLists::with_capacity(8);
//! lists.allow_read(CanId::standard(0x100)?)?;
//! lists.allow_write(CanId::standard(0x200)?)?;
//!
//! let hpe = HardwarePolicyEngine::new("ecu-hpe", lists);
//! let mut node = CanNode::new("ecu");
//! node.install_interposer(Box::new(hpe));
//! assert!(node.is_interposed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod decision;
pub mod engine;
pub mod error;
pub mod lists;
pub mod telemetry;

pub use config::{compile_policy_to_lists, synthesize_id_mask_cover};
pub use cost::CostModel;
pub use decision::{DecisionBlock, Verdict};
pub use engine::HardwarePolicyEngine;
pub use error::HpeError;
pub use lists::{ApprovedList, ApprovedLists};
pub use telemetry::HpeTelemetry;
