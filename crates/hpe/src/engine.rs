//! The complete hardware policy engine.
//!
//! [`HardwarePolicyEngine`] wires the approved lists and decision block into
//! `polsec-can`'s [`Interposer`] seam. It is a cheap clone-able handle over
//! shared state: one clone is boxed into the [`CanNode`](polsec_can::CanNode)
//! as the in-line filter, while the OEM keeps another clone as the
//! *maintenance port* for telemetry and signed configuration updates.
//! Firmware code has neither — the [`Firmware`](polsec_can::Firmware) trait
//! offers no path to the interposer, and the engine's only mutating entry
//! points are [`apply_signed_config`](HardwarePolicyEngine::apply_signed_config)
//! (requires the OEM key) and
//! [`firmware_attempt_reconfigure`](HardwarePolicyEngine::firmware_attempt_reconfigure)
//! (always fails, modelling the tamper-resistance of the hardware block).

use crate::config::compile_policy_to_lists;
use crate::decision::DecisionBlock;
use crate::error::HpeError;
use crate::lists::ApprovedLists;
use crate::telemetry::HpeTelemetry;
use polsec_can::node::{InterposeVerdict, Interposer};
use polsec_can::CanFrame;
use polsec_core::SignedBundle;
use polsec_sim::SimTime;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    label: String,
    lists: ApprovedLists,
    block: DecisionBlock,
    telemetry: HpeTelemetry,
    config_version: u64,
    oem_key: Option<Vec<u8>>,
}

/// The hardware policy engine of Fig. 4. See the module docs.
#[derive(Debug, Clone)]
pub struct HardwarePolicyEngine {
    inner: Arc<Mutex<Inner>>,
}

impl HardwarePolicyEngine {
    /// Creates an engine with a static configuration and no update key
    /// (field updates disabled).
    pub fn new(label: impl Into<String>, lists: ApprovedLists) -> Self {
        HardwarePolicyEngine {
            inner: Arc::new(Mutex::new(Inner {
                label: label.into(),
                lists,
                block: DecisionBlock::default(),
                telemetry: HpeTelemetry::new(),
                config_version: 0,
                oem_key: None,
            })),
        }
    }

    /// Provisions the OEM verification key, enabling signed configuration
    /// updates (builder style; done at manufacture).
    pub fn with_oem_key(self, key: Vec<u8>) -> Self {
        self.lock().oem_key = Some(key);
        self
    }

    /// Overrides the decision block's cost model (builder style).
    pub fn with_decision_block(self, block: DecisionBlock) -> Self {
        self.lock().block = block;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Poisoning can only arise from a panic inside another lock holder;
        // recover the data rather than propagating the poison.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The engine's label.
    pub fn label(&self) -> String {
        self.lock().label.clone()
    }

    /// Snapshot of the telemetry counters.
    pub fn telemetry(&self) -> HpeTelemetry {
        self.lock().telemetry.clone()
    }

    /// The active configuration version.
    pub fn config_version(&self) -> u64 {
        self.lock().config_version
    }

    /// Snapshot of the approved lists (for inspection/diagnostics).
    pub fn lists(&self) -> ApprovedLists {
        self.lock().lists.clone()
    }

    /// The path compromised firmware would have to use: an unauthenticated
    /// reconfiguration request. It **always fails** and is counted.
    ///
    /// # Errors
    /// Always [`HpeError::TamperRejected`].
    pub fn firmware_attempt_reconfigure(&self) -> Result<(), HpeError> {
        let mut inner = self.lock();
        inner.telemetry.tamper_attempts += 1;
        Err(HpeError::TamperRejected)
    }

    /// Applies an OEM-signed policy bundle: verifies the signature, requires
    /// the version to advance, compiles the bundle's policies for `mode`
    /// into fresh lists (preserving hardware capacity), then swaps them in.
    ///
    /// # Errors
    /// [`HpeError::ConfigRejected`] for missing key / bad signature / stale
    /// version; [`HpeError::UnsupportedRule`] / [`HpeError::ListFull`] if
    /// the bundle does not fit the hardware.
    pub fn apply_signed_config(
        &self,
        bundle: &SignedBundle,
        mode: Option<&str>,
    ) -> Result<(), HpeError> {
        let mut inner = self.lock();
        let key = inner.oem_key.clone().ok_or_else(|| HpeError::ConfigRejected {
            reason: "no oem key provisioned".into(),
        })?;
        let verified = bundle.verify(&key).map_err(|e| HpeError::ConfigRejected {
            reason: e.to_string(),
        })?;
        if verified.version <= inner.config_version {
            return Err(HpeError::ConfigRejected {
                reason: format!(
                    "version {} does not advance current {}",
                    verified.version, inner.config_version
                ),
            });
        }
        let capacity = inner.lists.read().capacity();
        let mut combined = ApprovedLists::with_capacity(capacity);
        for policy in &verified.policies {
            let lists = compile_policy_to_lists(policy, mode, capacity)?;
            for e in lists.read().entries() {
                combined.add_read_entry(*e)?;
            }
            for e in lists.write().entries() {
                combined.add_write_entry(*e)?;
            }
        }
        inner.lists.clear();
        inner.lists = combined;
        inner.config_version = verified.version;
        Ok(())
    }
}

impl Interposer for HardwarePolicyEngine {
    fn on_ingress(&mut self, _now: SimTime, frame: &CanFrame) -> InterposeVerdict {
        let mut inner = self.lock();
        let verdict = inner.block.decide(inner.lists.read(), frame.id());
        inner.telemetry.total_cycles += verdict.cycles as u64;
        if verdict.granted {
            inner.telemetry.read_granted += 1;
            InterposeVerdict::Grant
        } else {
            inner.telemetry.read_blocked += 1;
            inner.telemetry.note_block(frame.id().raw());
            InterposeVerdict::Block
        }
    }

    fn on_egress(&mut self, _now: SimTime, frame: &CanFrame) -> InterposeVerdict {
        let mut inner = self.lock();
        let verdict = inner.block.decide(inner.lists.write(), frame.id());
        inner.telemetry.total_cycles += verdict.cycles as u64;
        if verdict.granted {
            inner.telemetry.write_granted += 1;
            InterposeVerdict::Grant
        } else {
            inner.telemetry.write_blocked += 1;
            inner.telemetry.note_block(frame.id().raw());
            InterposeVerdict::Block
        }
    }

    fn label(&self) -> &str {
        "hpe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polsec_core::dsl::parse_policy;
    use polsec_core::PolicyBundle;
    use polsec_can::{CanBus, CanId, CanNode};

    const KEY: &[u8] = b"oem-hpe-key";

    fn sid(v: u32) -> CanId {
        CanId::standard(v).unwrap()
    }

    fn frame(id: u32) -> CanFrame {
        CanFrame::data(sid(id), &[0xEE]).unwrap()
    }

    fn engine_allowing(read: &[u32], write: &[u32]) -> HardwarePolicyEngine {
        let mut lists = ApprovedLists::with_capacity(16);
        for &id in read {
            lists.allow_read(sid(id)).unwrap();
        }
        for &id in write {
            lists.allow_write(sid(id)).unwrap();
        }
        HardwarePolicyEngine::new("test-hpe", lists)
    }

    #[test]
    fn ingress_filtering_and_telemetry() {
        let mut hpe = engine_allowing(&[0x100], &[]);
        assert_eq!(hpe.on_ingress(SimTime::ZERO, &frame(0x100)), InterposeVerdict::Grant);
        assert_eq!(hpe.on_ingress(SimTime::ZERO, &frame(0x200)), InterposeVerdict::Block);
        let t = hpe.telemetry();
        assert_eq!(t.read_granted, 1);
        assert_eq!(t.read_blocked, 1);
        assert!(t.total_cycles > 0);
        assert_eq!(t.top_blocked_id(), Some((0x200, 1)));
    }

    #[test]
    fn egress_filtering_is_separate() {
        let mut hpe = engine_allowing(&[0x100], &[0x300]);
        assert_eq!(hpe.on_egress(SimTime::ZERO, &frame(0x300)), InterposeVerdict::Grant);
        // read-approved but not write-approved
        assert_eq!(hpe.on_egress(SimTime::ZERO, &frame(0x100)), InterposeVerdict::Block);
        let t = hpe.telemetry();
        assert_eq!(t.write_granted, 1);
        assert_eq!(t.write_blocked, 1);
    }

    #[test]
    fn firmware_reconfigure_always_rejected_and_counted() {
        let hpe = engine_allowing(&[], &[]);
        for _ in 0..3 {
            assert_eq!(hpe.firmware_attempt_reconfigure().unwrap_err(), HpeError::TamperRejected);
        }
        assert_eq!(hpe.telemetry().tamper_attempts, 3);
    }

    #[test]
    fn clone_shares_state_maintenance_port_pattern() {
        let hpe = engine_allowing(&[0x10], &[]);
        let mut inline = hpe.clone();
        inline.on_ingress(SimTime::ZERO, &frame(0x10));
        // the retained handle sees the inline clone's traffic
        assert_eq!(hpe.telemetry().read_granted, 1);
    }

    #[test]
    fn signed_config_update_happy_path() {
        let hpe = engine_allowing(&[], &[]).with_oem_key(KEY.to_vec());
        let policy = parse_policy(
            r#"policy "hpe-cfg" version 1 {
                allow read on can:0x123 from *:*;
            }"#,
        )
        .unwrap();
        let bundle = PolicyBundle::new(1, "provisioning", vec![policy]).sign(KEY);
        hpe.apply_signed_config(&bundle, None).unwrap();
        assert_eq!(hpe.config_version(), 1);
        let mut inline = hpe.clone();
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x123)), InterposeVerdict::Grant);
    }

    #[test]
    fn unsigned_engine_rejects_updates() {
        let hpe = engine_allowing(&[], &[]);
        let bundle = PolicyBundle::new(1, "x", vec![]).sign(KEY);
        let err = hpe.apply_signed_config(&bundle, None).unwrap_err();
        assert!(matches!(err, HpeError::ConfigRejected { .. }));
        assert!(err.to_string().contains("no oem key"));
    }

    #[test]
    fn wrong_key_and_stale_version_rejected() {
        let hpe = engine_allowing(&[], &[]).with_oem_key(KEY.to_vec());
        let forged = PolicyBundle::new(1, "x", vec![]).sign(b"attacker");
        assert!(matches!(
            hpe.apply_signed_config(&forged, None),
            Err(HpeError::ConfigRejected { .. })
        ));
        let ok = PolicyBundle::new(1, "x", vec![]).sign(KEY);
        hpe.apply_signed_config(&ok, None).unwrap();
        let stale = PolicyBundle::new(1, "x", vec![]).sign(KEY);
        let err = hpe.apply_signed_config(&stale, None).unwrap_err();
        assert!(err.to_string().contains("does not advance"));
    }

    #[test]
    fn update_replaces_old_entries() {
        let hpe = engine_allowing(&[0x10], &[]).with_oem_key(KEY.to_vec());
        let policy = parse_policy(
            r#"policy "cfg" version 2 {
                allow read on can:0x20 from *:*;
            }"#,
        )
        .unwrap();
        let bundle = PolicyBundle::new(1, "rotate", vec![policy]).sign(KEY);
        hpe.apply_signed_config(&bundle, None).unwrap();
        let mut inline = hpe.clone();
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x10)), InterposeVerdict::Block);
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x20)), InterposeVerdict::Grant);
    }

    #[test]
    fn end_to_end_on_a_bus() {
        let mut bus = CanBus::new(500_000);
        let victim = bus.attach(CanNode::new("victim"));
        let attacker = bus.attach(CanNode::new("attacker"));
        let hpe = engine_allowing(&[0x100], &[]);
        bus.node_mut(victim)
            .unwrap()
            .install_interposer(Box::new(hpe.clone()));
        // legitimate frame passes, spoofed id is blocked at the victim
        bus.send_from(attacker, frame(0x100)).unwrap();
        bus.send_from(attacker, frame(0x666 & 0x7FF)).unwrap();
        bus.run_until_idle();
        let v = bus.node_mut(victim).unwrap();
        assert_eq!(v.receive().unwrap().id(), sid(0x100));
        assert!(v.receive().is_none());
        assert_eq!(hpe.telemetry().read_blocked, 1);
        assert_eq!(bus.stats().frames_blocked_ingress, 1);
    }

    #[test]
    fn mode_scoped_config() {
        let hpe = engine_allowing(&[], &[]).with_oem_key(KEY.to_vec());
        let policy = parse_policy(
            r#"policy "modal" version 1 {
                allow write on can:0x50 from *:* when mode == fail-safe;
            }"#,
        )
        .unwrap();
        let bundle = PolicyBundle::new(1, "modal", vec![policy]).sign(KEY);
        hpe.apply_signed_config(&bundle, Some("fail-safe")).unwrap();
        let mut inline = hpe.clone();
        assert_eq!(inline.on_egress(SimTime::ZERO, &frame(0x50)), InterposeVerdict::Grant);
    }
}
