//! The complete hardware policy engine.
//!
//! [`HardwarePolicyEngine`] wires the approved lists and decision block into
//! `polsec-can`'s [`Interposer`] seam. It is a cheap clone-able handle over
//! shared state: one clone is boxed into the [`CanNode`](polsec_can::CanNode)
//! as the in-line filter, while the OEM keeps another clone as the
//! *maintenance port* for telemetry and signed configuration updates.
//! Firmware code has neither — the [`Firmware`](polsec_can::Firmware) trait
//! offers no path to the interposer, and the engine's only mutating entry
//! points are [`apply_signed_config`](HardwarePolicyEngine::apply_signed_config)
//! (requires the OEM key) and
//! [`firmware_attempt_reconfigure`](HardwarePolicyEngine::firmware_attempt_reconfigure)
//! (always fails, modelling the tamper-resistance of the hardware block).
//!
//! # The lookup fast path (DESIGN.md §6)
//!
//! The per-frame path is lock-light: telemetry counters are atomics, the
//! engine label is a pre-shared `Arc<str>`, and verdicts are cached in a
//! generation-tagged [`GenCache`] keyed by `(can id, direction)` — the same
//! idiom as `polsec-core`'s decision cache. A signed configuration update
//! (or a decision-block swap) bumps the generation, so stale verdicts can
//! never answer; only a cache miss takes the configuration read lock. Cycle
//! accounting is preserved on hits: the cached verdict carries the cycle
//! cost the hardware comparator bank spends on every frame.

use crate::config::compile_policy_to_lists;
use crate::decision::DecisionBlock;
use crate::error::HpeError;
use crate::lists::ApprovedLists;
use crate::telemetry::HpeTelemetry;
use polsec_can::node::{InterposeVerdict, Interposer};
use polsec_can::{CanFrame, CanId};
use polsec_core::cache::{GenCache, KEY_VALID};
use polsec_core::SignedBundle;
use polsec_sim::SimTime;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Mutable configuration, touched only by updates and cache misses.
#[derive(Debug)]
struct HpeConfig {
    lists: ApprovedLists,
    block: DecisionBlock,
    oem_key: Option<Vec<u8>>,
}

/// Per-outcome event count and cycle sum packed into one word: count in the
/// low 32 bits, cycles in the high 32 — so the per-frame accounting path is
/// a **single** atomic RMW instead of one for the counter plus one for the
/// cycle total. Lookup costs are ≤ a few dozen cycles per frame, so the
/// 32-bit cycle half saturates only after ~10⁸ frames per engine — far
/// beyond any simulated run; [`TelemetryCounters::snapshot`] would surface a
/// wrap as an impossible mean, caught by the bench sanity checks.
#[inline]
const fn pack_event(cycles: u32) -> u64 {
    ((cycles as u64) << 32) | 1
}

const fn unpack_count(v: u64) -> u64 {
    v & 0xFFFF_FFFF
}

const fn unpack_cycles(v: u64) -> u64 {
    v >> 32
}

/// Slots in the lock-free blocked-id table. Each engine's approved lists
/// cover at most a few dozen identifiers, so collisions are rare and the
/// overflow map is effectively never touched.
const BLOCKED_SLOTS: usize = 128;

/// A fixed open-addressed `(id → count)` table updated with atomics only;
/// the deny path bumps a counter without taking any lock. Ids that fail to
/// claim a slot (table full) fall back to a mutexed overflow map.
struct BlockedIdTable {
    /// `raw id + 1`; 0 marks an empty slot.
    keys: Box<[AtomicU64]>,
    counts: Box<[AtomicU64]>,
    overflow: Mutex<BTreeMap<u32, u64>>,
}

impl std::fmt::Debug for BlockedIdTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockedIdTable").finish_non_exhaustive()
    }
}

impl Default for BlockedIdTable {
    fn default() -> Self {
        BlockedIdTable {
            keys: (0..BLOCKED_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            counts: (0..BLOCKED_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            overflow: Mutex::new(BTreeMap::new()),
        }
    }
}

impl BlockedIdTable {
    fn bump(&self, id: u32) {
        let key = u64::from(id) + 1;
        let mut slot = (id as usize).wrapping_mul(0x9E37_79B9) >> 16 & (BLOCKED_SLOTS - 1);
        for _ in 0..BLOCKED_SLOTS {
            let k = self.keys[slot].load(Ordering::Acquire);
            if k == key {
                self.counts[slot].fetch_add(1, Ordering::Relaxed);
                return;
            }
            if k == 0 {
                match self.keys[slot].compare_exchange(
                    0,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.counts[slot].fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(current) if current == key => {
                        self.counts[slot].fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => {} // lost the race to another id; probe on
                }
            }
            slot = (slot + 1) & (BLOCKED_SLOTS - 1);
        }
        *lock(&self.overflow).entry(id).or_insert(0) += 1;
    }

    fn snapshot(&self) -> BTreeMap<u32, u64> {
        let mut out = lock(&self.overflow).clone();
        for (k, c) in self.keys.iter().zip(self.counts.iter()) {
            let key = k.load(Ordering::Acquire);
            if key != 0 {
                // count may still be mid-publication (key claimed, count not
                // yet bumped); skip zero counts rather than report them
                let n = c.load(Ordering::Relaxed);
                if n > 0 {
                    *out.entry((key - 1) as u32).or_insert(0) += n;
                }
            }
        }
        out
    }
}

/// Lock-free telemetry: one packed atomic per `(direction, outcome)` pair,
/// a CAS-claimed per-id block table — no mutex anywhere on the frame path.
#[derive(Debug, Default)]
struct TelemetryCounters {
    read_granted: AtomicU64,
    read_blocked: AtomicU64,
    write_granted: AtomicU64,
    write_blocked: AtomicU64,
    tamper_attempts: AtomicU64,
    blocked_by_id: BlockedIdTable,
}

impl TelemetryCounters {
    fn snapshot(&self) -> HpeTelemetry {
        let rg = self.read_granted.load(Ordering::Relaxed);
        let rb = self.read_blocked.load(Ordering::Relaxed);
        let wg = self.write_granted.load(Ordering::Relaxed);
        let wb = self.write_blocked.load(Ordering::Relaxed);
        HpeTelemetry {
            read_granted: unpack_count(rg),
            read_blocked: unpack_count(rb),
            write_granted: unpack_count(wg),
            write_blocked: unpack_count(wb),
            tamper_attempts: self.tamper_attempts.load(Ordering::Relaxed),
            total_cycles: unpack_cycles(rg)
                + unpack_cycles(rb)
                + unpack_cycles(wg)
                + unpack_cycles(wb),
            blocked_by_id: self.blocked_by_id.snapshot(),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Debug)]
struct Shared {
    label: Arc<str>,
    config: RwLock<HpeConfig>,
    config_version: AtomicU64,
    telemetry: TelemetryCounters,
    cache: GenCache,
    generation: AtomicU32,
}

/// Verdict-cache slots; CAN id spaces are small, so a modest table hits
/// almost always.
const VERDICT_CACHE_SLOTS: usize = 2_048;

const DIR_READ: u64 = 0;
const DIR_WRITE: u64 = 1;

/// Slots in the per-handle verdict cache (CAN id working sets per node are
/// tiny; 64 direct-mapped slots overshoot them).
const LOCAL_VERDICT_SLOTS: usize = 64;

/// A per-*handle* verdict cache with no atomics at all. The interposer seam
/// hands each node exclusive `&mut` access to its boxed engine handle, so
/// the handle may keep plain memory: one generation check (a single atomic
/// load) validates the whole cache, and a config update wipes it on the
/// next use. Misses fall through to the shared [`GenCache`] path.
#[derive(Debug, Clone)]
struct LocalVerdicts {
    /// `(packed key + 1, packed verdict)`; key 0 marks an empty slot.
    entries: Box<[(u64, u64)]>,
    generation: u32,
}

impl LocalVerdicts {
    fn new() -> Self {
        LocalVerdicts {
            entries: vec![(0, 0); LOCAL_VERDICT_SLOTS].into_boxed_slice(),
            generation: 0,
        }
    }
}

/// The hardware policy engine of Fig. 4. See the module docs.
#[derive(Debug, Clone)]
pub struct HardwarePolicyEngine {
    shared: Arc<Shared>,
    local: LocalVerdicts,
}

impl HardwarePolicyEngine {
    /// Creates an engine with a static configuration and no update key
    /// (field updates disabled).
    pub fn new(label: impl Into<String>, lists: ApprovedLists) -> Self {
        HardwarePolicyEngine {
            shared: Arc::new(Shared {
                label: Arc::from(label.into()),
                config: RwLock::new(HpeConfig {
                    lists,
                    block: DecisionBlock::default(),
                    oem_key: None,
                }),
                config_version: AtomicU64::new(0),
                telemetry: TelemetryCounters::default(),
                cache: GenCache::with_capacity(VERDICT_CACHE_SLOTS),
                generation: AtomicU32::new(0),
            }),
            local: LocalVerdicts::new(),
        }
    }

    /// Provisions the OEM verification key, enabling signed configuration
    /// updates (builder style; done at manufacture).
    pub fn with_oem_key(self, key: Vec<u8>) -> Self {
        self.write_config().oem_key = Some(key);
        self
    }

    /// Overrides the decision block's cost model (builder style).
    pub fn with_decision_block(self, block: DecisionBlock) -> Self {
        self.write_config().block = block;
        self.invalidate();
        self
    }

    fn read_config(&self) -> std::sync::RwLockReadGuard<'_, HpeConfig> {
        self.shared.config.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_config(&self) -> std::sync::RwLockWriteGuard<'_, HpeConfig> {
        self.shared.config.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Bumps the verdict-cache generation and erases the slots.
    fn invalidate(&self) {
        self.shared.generation.fetch_add(1, Ordering::AcqRel);
        self.shared.cache.clear();
    }

    /// The engine's label, pre-shared so reads take no lock and clone no
    /// string.
    pub fn label(&self) -> Arc<str> {
        Arc::clone(&self.shared.label)
    }

    /// Snapshot of the telemetry counters.
    pub fn telemetry(&self) -> HpeTelemetry {
        self.shared.telemetry.snapshot()
    }

    /// The active configuration version (atomic read; no lock).
    pub fn config_version(&self) -> u64 {
        self.shared.config_version.load(Ordering::Acquire)
    }

    /// The verdict-cache generation (bumped by every reconfiguration).
    pub fn cache_generation(&self) -> u32 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// Snapshot of the approved lists (for inspection/diagnostics).
    pub fn lists(&self) -> ApprovedLists {
        self.read_config().lists.clone()
    }

    /// Looks up the read-path (ingress) verdict for `id` without recording
    /// telemetry: `(granted, cycles)` exactly as the inline engine would
    /// decide, through the same verdict cache.
    ///
    /// A maintenance-port diagnostic — the fleet engine samples
    /// deterministic verdict costs with it without perturbing the counters
    /// the experiment is measuring.
    pub fn probe_read(&self, id: CanId) -> (bool, u32) {
        self.filter(DIR_READ, id)
    }

    /// Looks up the write-path (egress) verdict for `id` without recording
    /// telemetry. See [`HardwarePolicyEngine::probe_read`].
    pub fn probe_write(&self, id: CanId) -> (bool, u32) {
        self.filter(DIR_WRITE, id)
    }

    /// The path compromised firmware would have to use: an unauthenticated
    /// reconfiguration request. It **always fails** and is counted.
    ///
    /// # Errors
    /// Always [`HpeError::TamperRejected`].
    pub fn firmware_attempt_reconfigure(&self) -> Result<(), HpeError> {
        self.shared
            .telemetry
            .tamper_attempts
            .fetch_add(1, Ordering::Relaxed);
        Err(HpeError::TamperRejected)
    }

    /// Applies an OEM-signed policy bundle: verifies the signature, requires
    /// the version to advance, compiles the bundle's policies for `mode`
    /// into fresh lists (preserving hardware capacity), then swaps them in
    /// and invalidates the verdict cache.
    ///
    /// # Errors
    /// [`HpeError::ConfigRejected`] for missing key / bad signature / stale
    /// version; [`HpeError::UnsupportedRule`] / [`HpeError::ListFull`] if
    /// the bundle does not fit the hardware.
    pub fn apply_signed_config(
        &self,
        bundle: &SignedBundle,
        mode: Option<&str>,
    ) -> Result<(), HpeError> {
        let mut config = self.write_config();
        let key = config.oem_key.clone().ok_or_else(|| HpeError::ConfigRejected {
            reason: "no oem key provisioned".into(),
        })?;
        let verified = bundle.verify(&key).map_err(|e| HpeError::ConfigRejected {
            reason: e.to_string(),
        })?;
        let current = self.shared.config_version.load(Ordering::Acquire);
        if verified.version <= current {
            return Err(HpeError::ConfigRejected {
                reason: format!(
                    "version {} does not advance current {}",
                    verified.version, current
                ),
            });
        }
        let capacity = config.lists.read().capacity();
        let mut combined = ApprovedLists::with_capacity(capacity);
        for policy in &verified.policies {
            let lists = compile_policy_to_lists(policy, mode, capacity)?;
            for e in lists.read().entries() {
                combined.add_read_entry(*e)?;
            }
            for e in lists.write().entries() {
                combined.add_write_entry(*e)?;
            }
        }
        config.lists = combined;
        self.shared
            .config_version
            .store(verified.version, Ordering::Release);
        drop(config);
        self.invalidate();
        Ok(())
    }

    /// The `&mut` fast path: per-handle plain-memory cache first, shared
    /// seqlock cache on a miss. One atomic load (the generation) validates
    /// the local entries; a configuration update bumps the generation, which
    /// wipes the local cache here before any stale verdict can answer.
    fn filter_local(&mut self, direction: u64, id: CanId) -> (bool, u32) {
        let generation = self.shared.generation.load(Ordering::Acquire);
        if self.local.generation != generation {
            self.local.entries.fill((0, 0));
            self.local.generation = generation;
        }
        let packed_id = (u64::from(id.raw()) << 2)
            | (u64::from(id.is_extended()) << 1)
            | direction;
        let key = packed_id + 1; // shift away from the empty-slot sentinel
        let slot = (packed_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
            & (LOCAL_VERDICT_SLOTS - 1);
        let e = self.local.entries[slot];
        if e.0 == key {
            return (e.1 & 1 == 1, (e.1 >> 1) as u32);
        }
        let (granted, cycles) = self.filter(direction, id);
        self.local.entries[slot] = (key, (u64::from(cycles) << 1) | u64::from(granted));
        (granted, cycles)
    }

    /// One filtered lookup: cache first, decision block on a miss.
    fn filter(&self, direction: u64, id: CanId) -> (bool, u32) {
        let generation = u64::from(self.shared.generation.load(Ordering::Acquire)) & 0xF_FFFF;
        let packed_id = (u64::from(id.raw()) << 2)
            | (u64::from(id.is_extended()) << 1)
            | direction;
        let key = [packed_id, 0, KEY_VALID | generation];
        if let Some(v) = self.shared.cache.lookup(key) {
            return (v & 1 == 1, (v >> 1) as u32);
        }
        let config = self.read_config();
        let list = match direction {
            DIR_READ => config.lists.read(),
            _ => config.lists.write(),
        };
        let verdict = config.block.decide(list, id);
        self.shared
            .cache
            .insert(key, (u64::from(verdict.cycles) << 1) | u64::from(verdict.granted));
        (verdict.granted, verdict.cycles)
    }

    fn account(&self, direction: u64, id: CanId, granted: bool, cycles: u32) -> InterposeVerdict {
        let t = &self.shared.telemetry;
        // one packed RMW carries both the event count and the cycle cost
        let delta = pack_event(cycles);
        match (direction, granted) {
            (DIR_READ, true) => t.read_granted.fetch_add(delta, Ordering::Relaxed),
            (DIR_READ, false) => t.read_blocked.fetch_add(delta, Ordering::Relaxed),
            (_, true) => t.write_granted.fetch_add(delta, Ordering::Relaxed),
            (_, false) => t.write_blocked.fetch_add(delta, Ordering::Relaxed),
        };
        if granted {
            InterposeVerdict::Grant
        } else {
            t.blocked_by_id.bump(id.raw());
            InterposeVerdict::Block
        }
    }
}

impl Interposer for HardwarePolicyEngine {
    fn on_ingress(&mut self, _now: SimTime, frame: &CanFrame) -> InterposeVerdict {
        let (granted, cycles) = self.filter_local(DIR_READ, frame.id());
        self.account(DIR_READ, frame.id(), granted, cycles)
    }

    fn on_egress(&mut self, _now: SimTime, frame: &CanFrame) -> InterposeVerdict {
        let (granted, cycles) = self.filter_local(DIR_WRITE, frame.id());
        self.account(DIR_WRITE, frame.id(), granted, cycles)
    }

    fn label(&self) -> &str {
        "hpe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polsec_core::dsl::parse_policy;
    use polsec_core::PolicyBundle;
    use polsec_can::{CanBus, CanId, CanNode};

    const KEY: &[u8] = b"oem-hpe-key";

    fn sid(v: u32) -> CanId {
        CanId::standard(v).unwrap()
    }

    fn frame(id: u32) -> CanFrame {
        CanFrame::data(sid(id), &[0xEE]).unwrap()
    }

    fn engine_allowing(read: &[u32], write: &[u32]) -> HardwarePolicyEngine {
        let mut lists = ApprovedLists::with_capacity(16);
        for &id in read {
            lists.allow_read(sid(id)).unwrap();
        }
        for &id in write {
            lists.allow_write(sid(id)).unwrap();
        }
        HardwarePolicyEngine::new("test-hpe", lists)
    }

    #[test]
    fn ingress_filtering_and_telemetry() {
        let mut hpe = engine_allowing(&[0x100], &[]);
        assert_eq!(hpe.on_ingress(SimTime::ZERO, &frame(0x100)), InterposeVerdict::Grant);
        assert_eq!(hpe.on_ingress(SimTime::ZERO, &frame(0x200)), InterposeVerdict::Block);
        let t = hpe.telemetry();
        assert_eq!(t.read_granted, 1);
        assert_eq!(t.read_blocked, 1);
        assert!(t.total_cycles > 0);
        assert_eq!(t.top_blocked_id(), Some((0x200, 1)));
    }

    #[test]
    fn egress_filtering_is_separate() {
        let mut hpe = engine_allowing(&[0x100], &[0x300]);
        assert_eq!(hpe.on_egress(SimTime::ZERO, &frame(0x300)), InterposeVerdict::Grant);
        // read-approved but not write-approved
        assert_eq!(hpe.on_egress(SimTime::ZERO, &frame(0x100)), InterposeVerdict::Block);
        let t = hpe.telemetry();
        assert_eq!(t.write_granted, 1);
        assert_eq!(t.write_blocked, 1);
    }

    #[test]
    fn repeated_frames_hit_the_verdict_cache_with_same_accounting() {
        let mut hpe = engine_allowing(&[0x100], &[]);
        hpe.on_ingress(SimTime::ZERO, &frame(0x100));
        let cycles_after_first = hpe.telemetry().total_cycles;
        for _ in 0..3 {
            assert_eq!(hpe.on_ingress(SimTime::ZERO, &frame(0x100)), InterposeVerdict::Grant);
        }
        let t = hpe.telemetry();
        assert_eq!(t.read_granted, 4);
        assert_eq!(
            t.total_cycles,
            cycles_after_first * 4,
            "cache hits keep charging the hardware lookup cost"
        );
    }

    #[test]
    fn probe_matches_inline_verdicts_without_telemetry() {
        let hpe = engine_allowing(&[0x100], &[0x300]);
        assert!(hpe.probe_read(sid(0x100)).0);
        assert!(!hpe.probe_read(sid(0x200)).0);
        assert!(hpe.probe_write(sid(0x300)).0);
        assert!(!hpe.probe_write(sid(0x100)).0);
        assert!(hpe.probe_read(sid(0x100)).1 > 0, "probe reports cycle cost");
        let t = hpe.telemetry();
        assert_eq!(
            (t.read_granted, t.read_blocked, t.write_granted, t.write_blocked, t.total_cycles),
            (0, 0, 0, 0, 0),
            "probing must not perturb telemetry"
        );
        // Probe verdicts agree with the inline path and share its cache.
        let mut inline = hpe.clone();
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x100)), InterposeVerdict::Grant);
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x200)), InterposeVerdict::Block);
    }

    #[test]
    fn label_is_pre_shared() {
        let hpe = engine_allowing(&[], &[]);
        let a = hpe.label();
        let b = hpe.label();
        assert_eq!(&*a, "test-hpe");
        assert!(Arc::ptr_eq(&a, &b), "label reads share one allocation");
    }

    #[test]
    fn firmware_reconfigure_always_rejected_and_counted() {
        let hpe = engine_allowing(&[], &[]);
        for _ in 0..3 {
            assert_eq!(hpe.firmware_attempt_reconfigure().unwrap_err(), HpeError::TamperRejected);
        }
        assert_eq!(hpe.telemetry().tamper_attempts, 3);
    }

    #[test]
    fn clone_shares_state_maintenance_port_pattern() {
        let hpe = engine_allowing(&[0x10], &[]);
        let mut inline = hpe.clone();
        inline.on_ingress(SimTime::ZERO, &frame(0x10));
        // the retained handle sees the inline clone's traffic
        assert_eq!(hpe.telemetry().read_granted, 1);
    }

    #[test]
    fn signed_config_update_happy_path() {
        let hpe = engine_allowing(&[], &[]).with_oem_key(KEY.to_vec());
        let policy = parse_policy(
            r#"policy "hpe-cfg" version 1 {
                allow read on can:0x123 from *:*;
            }"#,
        )
        .unwrap();
        let bundle = PolicyBundle::new(1, "provisioning", vec![policy]).sign(KEY);
        hpe.apply_signed_config(&bundle, None).unwrap();
        assert_eq!(hpe.config_version(), 1);
        let mut inline = hpe.clone();
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x123)), InterposeVerdict::Grant);
    }

    #[test]
    fn unsigned_engine_rejects_updates() {
        let hpe = engine_allowing(&[], &[]);
        let bundle = PolicyBundle::new(1, "x", vec![]).sign(KEY);
        let err = hpe.apply_signed_config(&bundle, None).unwrap_err();
        assert!(matches!(err, HpeError::ConfigRejected { .. }));
        assert!(err.to_string().contains("no oem key"));
    }

    #[test]
    fn wrong_key_and_stale_version_rejected() {
        let hpe = engine_allowing(&[], &[]).with_oem_key(KEY.to_vec());
        let forged = PolicyBundle::new(1, "x", vec![]).sign(b"attacker");
        assert!(matches!(
            hpe.apply_signed_config(&forged, None),
            Err(HpeError::ConfigRejected { .. })
        ));
        let ok = PolicyBundle::new(1, "x", vec![]).sign(KEY);
        hpe.apply_signed_config(&ok, None).unwrap();
        let stale = PolicyBundle::new(1, "x", vec![]).sign(KEY);
        let err = hpe.apply_signed_config(&stale, None).unwrap_err();
        assert!(err.to_string().contains("does not advance"));
    }

    #[test]
    fn update_replaces_old_entries_and_invalidates_cached_verdicts() {
        let hpe = engine_allowing(&[0x10], &[]).with_oem_key(KEY.to_vec());
        let mut inline = hpe.clone();
        // Warm the verdict cache with a grant for 0x10.
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x10)), InterposeVerdict::Grant);
        let generation_before = hpe.cache_generation();
        let policy = parse_policy(
            r#"policy "cfg" version 2 {
                allow read on can:0x20 from *:*;
            }"#,
        )
        .unwrap();
        let bundle = PolicyBundle::new(1, "rotate", vec![policy]).sign(KEY);
        hpe.apply_signed_config(&bundle, None).unwrap();
        assert!(hpe.cache_generation() > generation_before);
        // The cached grant for 0x10 must not survive the update.
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x10)), InterposeVerdict::Block);
        assert_eq!(inline.on_ingress(SimTime::ZERO, &frame(0x20)), InterposeVerdict::Grant);
    }

    #[test]
    fn end_to_end_on_a_bus() {
        let mut bus = CanBus::new(500_000);
        let victim = bus.attach(CanNode::new("victim"));
        let attacker = bus.attach(CanNode::new("attacker"));
        let hpe = engine_allowing(&[0x100], &[]);
        bus.node_mut(victim)
            .unwrap()
            .install_interposer(Box::new(hpe.clone()));
        // legitimate frame passes, spoofed id is blocked at the victim
        bus.send_from(attacker, frame(0x100)).unwrap();
        bus.send_from(attacker, frame(0x666 & 0x7FF)).unwrap();
        bus.run_until_idle();
        let v = bus.node_mut(victim).unwrap();
        assert_eq!(v.receive().unwrap().id(), sid(0x100));
        assert!(v.receive().is_none());
        assert_eq!(hpe.telemetry().read_blocked, 1);
        assert_eq!(bus.stats().frames_blocked_ingress, 1);
    }

    #[test]
    fn mode_scoped_config() {
        let hpe = engine_allowing(&[], &[]).with_oem_key(KEY.to_vec());
        let policy = parse_policy(
            r#"policy "modal" version 1 {
                allow write on can:0x50 from *:* when mode == fail-safe;
            }"#,
        )
        .unwrap();
        let bundle = PolicyBundle::new(1, "modal", vec![policy]).sign(KEY);
        hpe.apply_signed_config(&bundle, Some("fail-safe")).unwrap();
        let mut inline = hpe.clone();
        assert_eq!(inline.on_egress(SimTime::ZERO, &frame(0x50)), InterposeVerdict::Grant);
    }
}
