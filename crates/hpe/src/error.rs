//! Error type for the HPE crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by HPE configuration and operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HpeError {
    /// An approved list is at hardware capacity.
    ListFull {
        /// The capacity that was exceeded.
        capacity: usize,
    },
    /// A firmware-originated reconfiguration attempt was rejected (the
    /// tamper-resistance property).
    TamperRejected,
    /// A signed configuration bundle failed verification or did not advance
    /// the version.
    ConfigRejected {
        /// Why, in words.
        reason: String,
    },
    /// A policy rule could not be compiled into id/mask filter entries.
    UnsupportedRule {
        /// The rule id.
        rule: String,
        /// What made it uncompilable.
        reason: String,
    },
}

impl fmt::Display for HpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpeError::ListFull { capacity } => {
                write!(f, "approved list full (hardware capacity {capacity})")
            }
            HpeError::TamperRejected => {
                write!(f, "unauthenticated reconfiguration rejected by hardware")
            }
            HpeError::ConfigRejected { reason } => write!(f, "configuration rejected: {reason}"),
            HpeError::UnsupportedRule { rule, reason } => {
                write!(f, "rule '{rule}' cannot compile to hardware filters: {reason}")
            }
        }
    }
}

impl std::error::Error for HpeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            HpeError::ListFull { capacity: 16 }.to_string(),
            "approved list full (hardware capacity 16)"
        );
        assert!(HpeError::TamperRejected.to_string().contains("rejected"));
    }

    #[test]
    fn is_std_error() {
        fn takes<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes(HpeError::TamperRejected);
    }
}
