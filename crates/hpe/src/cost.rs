//! Lookup cycle-cost models.
//!
//! The E2 experiment quantifies the latency an HPE adds to each frame. Two
//! hardware realisations are modelled:
//!
//! * **serial** — entries checked one register at a time (small, cheap
//!   silicon): cost grows with the matched entry's position (or the full
//!   bank size on a miss),
//! * **parallel** — all entries compared in one cycle (TCAM-style): constant
//!   cost regardless of bank size.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A lookup cost model in clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostModel {
    /// Serial comparator: `base + per_entry × entries_examined`.
    Serial {
        /// Fixed pipeline cost.
        base: u32,
        /// Cost per entry examined.
        per_entry: u32,
    },
    /// Parallel comparator bank: fixed cost per lookup.
    Parallel {
        /// Cycles per lookup.
        cycles: u32,
    },
}

impl Default for CostModel {
    /// Default: a serial comparator with a 2-cycle base and 1 cycle per
    /// entry — conservative numbers for a small FPGA block.
    fn default() -> Self {
        CostModel::Serial { base: 2, per_entry: 1 }
    }
}

impl CostModel {
    /// Cycles for a lookup that matched at `matched_index` (0-based), or
    /// missed (`None`) after examining `list_len` entries.
    pub fn lookup_cycles(&self, matched_index: Option<usize>, list_len: usize) -> u32 {
        match *self {
            CostModel::Serial { base, per_entry } => {
                let examined = match matched_index {
                    Some(i) => i + 1,
                    None => list_len,
                } as u32;
                base + per_entry * examined
            }
            CostModel::Parallel { cycles } => cycles,
        }
    }

    /// Worst-case lookup cycles for a bank of `list_len` entries.
    pub fn worst_case_cycles(&self, list_len: usize) -> u32 {
        self.lookup_cycles(None, list_len.max(1))
    }

    /// Converts cycles to nanoseconds at a clock frequency in MHz.
    pub fn cycles_to_ns(cycles: u32, clock_mhz: u32) -> f64 {
        if clock_mhz == 0 {
            return f64::INFINITY;
        }
        cycles as f64 * 1_000.0 / clock_mhz as f64
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModel::Serial { base, per_entry } => {
                write!(f, "serial({base}+{per_entry}/entry)")
            }
            CostModel::Parallel { cycles } => write!(f, "parallel({cycles})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_costs_grow_with_position() {
        let m = CostModel::Serial { base: 2, per_entry: 1 };
        assert_eq!(m.lookup_cycles(Some(0), 16), 3);
        assert_eq!(m.lookup_cycles(Some(15), 16), 18);
        assert_eq!(m.lookup_cycles(None, 16), 18, "miss scans the whole bank");
    }

    #[test]
    fn parallel_is_constant() {
        let m = CostModel::Parallel { cycles: 2 };
        assert_eq!(m.lookup_cycles(Some(0), 64), 2);
        assert_eq!(m.lookup_cycles(None, 64), 2);
        assert_eq!(m.worst_case_cycles(1024), 2);
    }

    #[test]
    fn worst_case_serial() {
        let m = CostModel::default();
        assert_eq!(m.worst_case_cycles(16), 18);
        assert_eq!(m.worst_case_cycles(0), 3, "empty bank still costs one check");
    }

    #[test]
    fn cycles_to_ns_conversion() {
        // 10 cycles at 100 MHz = 100 ns
        assert!((CostModel::cycles_to_ns(10, 100) - 100.0).abs() < 1e-9);
        assert!(CostModel::cycles_to_ns(1, 0).is_infinite());
    }

    #[test]
    fn display() {
        assert_eq!(CostModel::default().to_string(), "serial(2+1/entry)");
        assert_eq!(CostModel::Parallel { cycles: 1 }.to_string(), "parallel(1)");
    }
}
