//! Approved reading and writing lists.
//!
//! "It holds a list of approved CAN message IDs that provides necessary
//! information to the node to provide relevant services to the rest of the
//! system without compromising the security" (paper §V.B.2). Real filter
//! banks are small, fixed-size register files, so the lists here are
//! capacity-bounded and additions fail loudly when full.

use crate::error::HpeError;
use polsec_can::{AcceptanceFilter, CanId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default hardware capacity per list (entries).
pub const DEFAULT_CAPACITY: usize = 16;

/// One capacity-bounded bank of id/mask entries.
///
/// Unlike the controller's [`FilterBank`](polsec_can::FilterBank), an empty
/// approved list **blocks everything** — the HPE is deny-by-default, the
/// least-privilege stance of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApprovedList {
    entries: Vec<AcceptanceFilter>,
    capacity: usize,
}

impl ApprovedList {
    /// Creates an empty list with the given hardware capacity (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        ApprovedList {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// The hardware capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of programmed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list has no entries (blocks everything).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds an id/mask entry.
    ///
    /// # Errors
    /// [`HpeError::ListFull`] at capacity.
    pub fn add(&mut self, entry: AcceptanceFilter) -> Result<(), HpeError> {
        if self.entries.len() >= self.capacity {
            return Err(HpeError::ListFull { capacity: self.capacity });
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Adds an exact-id entry.
    ///
    /// # Errors
    /// [`HpeError::ListFull`] at capacity.
    pub fn add_exact(&mut self, id: CanId) -> Result<(), HpeError> {
        self.add(AcceptanceFilter::exact(id))
    }

    /// Whether `id` is approved, and by which entry index.
    ///
    /// Returns the index of the **first** matching entry (hardware banks
    /// match in parallel but report a priority index).
    pub fn lookup(&self, id: CanId) -> Option<usize> {
        self.entries.iter().position(|e| e.accepts(id))
    }

    /// Whether `id` is approved.
    pub fn approves(&self, id: CanId) -> bool {
        self.lookup(id).is_some()
    }

    /// Wipes all entries (authorised reconfiguration path only).
    #[allow(dead_code)] // exercised by tests; retained for reconfig paths
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// The programmed entries.
    pub fn entries(&self) -> &[AcceptanceFilter] {
        &self.entries
    }

    /// Every standard identifier the list approves, ascending — the bank
    /// "decompiled" back out of hardware for offline analysis
    /// (`polsec-analyze`'s Layer-2 coverage matrix). Probes the whole
    /// 11-bit space, so id/mask and range entries are expanded exactly
    /// rather than approximated.
    pub fn covered_standard_ids(&self) -> Vec<u16> {
        (0u16..=0x7FF)
            .filter(|&id| self.approves(CanId::Standard(id)))
            .collect()
    }
}

impl fmt::Display for ApprovedList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} entries", self.entries.len(), self.capacity)
    }
}

/// The HPE's pair of approved lists: read side and write side.
///
/// "The HPE consists of a separate hardware-based reading filter and writing
/// filter, which facilitates curtailment of both inside … and outside …
/// attacks."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApprovedLists {
    read: ApprovedList,
    write: ApprovedList,
}

impl Default for ApprovedLists {
    fn default() -> Self {
        ApprovedLists::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ApprovedLists {
    /// Creates empty read and write lists, each with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ApprovedLists {
            read: ApprovedList::with_capacity(capacity),
            write: ApprovedList::with_capacity(capacity),
        }
    }

    /// Creates from explicit lists.
    pub fn new(read: ApprovedList, write: ApprovedList) -> Self {
        ApprovedLists { read, write }
    }

    /// The read-side list.
    pub fn read(&self) -> &ApprovedList {
        &self.read
    }

    /// The write-side list.
    pub fn write(&self) -> &ApprovedList {
        &self.write
    }

    /// Approves an id for reception.
    ///
    /// # Errors
    /// [`HpeError::ListFull`].
    pub fn allow_read(&mut self, id: CanId) -> Result<(), HpeError> {
        self.read.add_exact(id)
    }

    /// Approves an id for transmission.
    ///
    /// # Errors
    /// [`HpeError::ListFull`].
    pub fn allow_write(&mut self, id: CanId) -> Result<(), HpeError> {
        self.write.add_exact(id)
    }

    /// Adds a read-side id/mask entry.
    ///
    /// # Errors
    /// [`HpeError::ListFull`].
    pub fn add_read_entry(&mut self, e: AcceptanceFilter) -> Result<(), HpeError> {
        self.read.add(e)
    }

    /// Adds a write-side id/mask entry.
    ///
    /// # Errors
    /// [`HpeError::ListFull`].
    pub fn add_write_entry(&mut self, e: AcceptanceFilter) -> Result<(), HpeError> {
        self.write.add(e)
    }

    /// Wipes both lists (authorised path only).
    #[allow(dead_code)] // exercised by tests; retained for reconfig paths
    pub(crate) fn clear(&mut self) {
        self.read.clear();
        self.write.clear();
    }
}

impl fmt::Display for ApprovedLists {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read[{}] write[{}]", self.read, self.write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(v: u32) -> CanId {
        CanId::standard(v).unwrap()
    }

    #[test]
    fn empty_list_blocks_everything() {
        let l = ApprovedList::with_capacity(4);
        assert!(!l.approves(sid(0)));
        assert!(!l.approves(sid(0x7FF)));
        assert!(l.is_empty());
    }

    #[test]
    fn exact_entries_approve_only_their_id() {
        let mut l = ApprovedList::with_capacity(4);
        l.add_exact(sid(0x100)).unwrap();
        assert!(l.approves(sid(0x100)));
        assert!(!l.approves(sid(0x101)));
        assert_eq!(l.lookup(sid(0x100)), Some(0));
        assert_eq!(l.lookup(sid(0x101)), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut l = ApprovedList::with_capacity(2);
        l.add_exact(sid(1)).unwrap();
        l.add_exact(sid(2)).unwrap();
        let err = l.add_exact(sid(3)).unwrap_err();
        assert_eq!(err, HpeError::ListFull { capacity: 2 });
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut l = ApprovedList::with_capacity(0);
        assert_eq!(l.capacity(), 1);
        l.add_exact(sid(1)).unwrap();
        assert!(l.add_exact(sid(2)).is_err());
    }

    #[test]
    fn masked_entries_cover_blocks() {
        let mut l = ApprovedList::with_capacity(4);
        l.add(AcceptanceFilter::standard(0x200, 0x7F0)).unwrap();
        for id in 0x200..0x210 {
            assert!(l.approves(sid(id)), "0x{id:X}");
        }
        assert!(!l.approves(sid(0x210)));
    }

    #[test]
    fn lookup_returns_first_match() {
        let mut l = ApprovedList::with_capacity(4);
        l.add(AcceptanceFilter::standard(0, 0)).unwrap(); // matches all
        l.add_exact(sid(5)).unwrap();
        assert_eq!(l.lookup(sid(5)), Some(0));
    }

    #[test]
    fn read_write_sides_are_independent() {
        let mut lists = ApprovedLists::with_capacity(4);
        lists.allow_read(sid(0x10)).unwrap();
        lists.allow_write(sid(0x20)).unwrap();
        assert!(lists.read().approves(sid(0x10)));
        assert!(!lists.read().approves(sid(0x20)));
        assert!(lists.write().approves(sid(0x20)));
        assert!(!lists.write().approves(sid(0x10)));
    }

    #[test]
    fn clear_is_crate_internal_and_total() {
        let mut lists = ApprovedLists::with_capacity(4);
        lists.allow_read(sid(1)).unwrap();
        lists.allow_write(sid(2)).unwrap();
        lists.clear();
        assert!(lists.read().is_empty());
        assert!(lists.write().is_empty());
    }

    #[test]
    fn display_shows_occupancy() {
        let mut lists = ApprovedLists::with_capacity(8);
        lists.allow_read(sid(1)).unwrap();
        assert_eq!(lists.to_string(), "read[1/8 entries] write[0/8 entries]");
    }

    #[test]
    fn covered_standard_ids_expands_masks_exactly() {
        let mut list = ApprovedList::with_capacity(4);
        list.add_exact(sid(0x123)).unwrap();
        // the aligned 4-block 0x200..=0x203
        list.add(AcceptanceFilter::standard(0x200, 0x7FC)).unwrap();
        assert_eq!(
            list.covered_standard_ids(),
            vec![0x123, 0x200, 0x201, 0x202, 0x203]
        );
        assert!(ApprovedList::with_capacity(1).covered_standard_ids().is_empty());
    }
}
