//! HPE telemetry counters.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Counters the HPE exposes for monitoring and for the experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HpeTelemetry {
    /// Frames granted on the read path.
    pub read_granted: u64,
    /// Frames blocked on the read path.
    pub read_blocked: u64,
    /// Frames granted on the write path.
    pub write_granted: u64,
    /// Frames blocked on the write path.
    pub write_blocked: u64,
    /// Unauthenticated reconfiguration attempts rejected.
    pub tamper_attempts: u64,
    /// Total modelled lookup cycles spent.
    pub total_cycles: u64,
    /// Block counts per raw identifier (top offenders view).
    pub blocked_by_id: BTreeMap<u32, u64>,
}

impl HpeTelemetry {
    /// Creates zeroed telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total frames seen on either path.
    pub fn total_frames(&self) -> u64 {
        self.read_granted + self.read_blocked + self.write_granted + self.write_blocked
    }

    /// Total frames blocked on either path.
    pub fn total_blocked(&self) -> u64 {
        self.read_blocked + self.write_blocked
    }

    /// Mean lookup cycles per frame (0 when no frames seen).
    pub fn mean_cycles(&self) -> f64 {
        let n = self.total_frames();
        if n == 0 {
            0.0
        } else {
            self.total_cycles as f64 / n as f64
        }
    }

    /// The identifier with the most blocks, if any frames were blocked.
    pub fn top_blocked_id(&self) -> Option<(u32, u64)> {
        self.blocked_by_id
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&id, &count)| (id, count))
    }

    /// Notes one blocked frame for `raw_id` (snapshot assembly helper).
    pub fn note_block(&mut self, raw_id: u32) {
        *self.blocked_by_id.entry(raw_id).or_insert(0) += 1;
    }
}

impl fmt::Display for HpeTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {}/{} write {}/{} (granted/blocked), tamper attempts {}, mean {:.1} cycles",
            self.read_granted,
            self.read_blocked,
            self.write_granted,
            self.write_blocked,
            self.tamper_attempts,
            self.mean_cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_mean() {
        let mut t = HpeTelemetry::new();
        t.read_granted = 3;
        t.write_blocked = 1;
        t.total_cycles = 8;
        assert_eq!(t.total_frames(), 4);
        assert_eq!(t.total_blocked(), 1);
        assert!((t.mean_cycles() - 2.0).abs() < 1e-12);
        assert_eq!(HpeTelemetry::new().mean_cycles(), 0.0);
    }

    #[test]
    fn top_blocked_id_tracks_max() {
        let mut t = HpeTelemetry::new();
        assert_eq!(t.top_blocked_id(), None);
        t.note_block(0x100);
        t.note_block(0x200);
        t.note_block(0x200);
        assert_eq!(t.top_blocked_id(), Some((0x200, 2)));
    }

    #[test]
    fn display_summarises() {
        let mut t = HpeTelemetry::new();
        t.tamper_attempts = 2;
        assert!(t.to_string().contains("tamper attempts 2"));
    }
}
