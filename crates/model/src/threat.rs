//! Threats.
//!
//! A [`Threat`] ties together everything one row of the paper's Table I
//! records: the targeted asset, the entry points that expose it, the STRIDE
//! categorisation, the DREAD rating, the operating modes in which the threat
//! applies, and the derived permission policy.

use crate::asset::AssetId;
use crate::countermeasure::PermissionHint;
use crate::dread::DreadScore;
use crate::entry_point::EntryPointId;
use crate::mode::OperatingMode;
use crate::stride::StrideSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier for a threat.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreatId(String);

impl ThreatId {
    /// Creates an identifier.
    pub fn new(id: impl Into<String>) -> Self {
        ThreatId(id.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ThreatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ThreatId {
    fn from(s: &str) -> Self {
        ThreatId::new(s)
    }
}

/// One identified threat against an asset.
///
/// # Example
/// ```
/// use polsec_model::{DreadScore, PermissionHint, Threat};
///
/// let t = Threat::builder("ecu-spoof", "Spoofed data over CAN bus causing disablement of ECU")
///     .asset("ev-ecu")
///     .entry_point("sensors")
///     .stride("STD".parse()?)
///     .dread(DreadScore::new(8, 5, 4, 6, 4)?)
///     .mode("normal")
///     .policy(PermissionHint::Read)
///     .build();
/// assert_eq!(t.dread().average_1dp(), 5.4);
/// # Ok::<(), polsec_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Threat {
    id: ThreatId,
    description: String,
    asset: AssetId,
    entry_points: Vec<EntryPointId>,
    stride: StrideSet,
    dread: DreadScore,
    modes: Vec<OperatingMode>,
    policy: PermissionHint,
}

impl Threat {
    /// Starts building a threat.
    pub fn builder(id: impl Into<ThreatId>, description: impl Into<String>) -> ThreatBuilder {
        ThreatBuilder {
            id: id.into(),
            description: description.into(),
            asset: AssetId::new("unspecified"),
            entry_points: Vec::new(),
            stride: StrideSet::EMPTY,
            dread: DreadScore::new(0, 0, 0, 0, 0).expect("zero scores are valid"),
            modes: Vec::new(),
            policy: PermissionHint::Read,
        }
    }

    /// The threat identifier.
    pub fn id(&self) -> &ThreatId {
        &self.id
    }

    /// The threat description ("Potential Threats" column).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The targeted asset.
    pub fn asset(&self) -> &AssetId {
        &self.asset
    }

    /// The exposing entry points.
    pub fn entry_points(&self) -> &[EntryPointId] {
        &self.entry_points
    }

    /// The STRIDE categorisation.
    pub fn stride(&self) -> StrideSet {
        self.stride
    }

    /// The DREAD rating.
    pub fn dread(&self) -> DreadScore {
        self.dread
    }

    /// Modes in which the threat applies (empty = all modes).
    pub fn modes(&self) -> &[OperatingMode] {
        &self.modes
    }

    /// Whether the threat applies in `mode`.
    pub fn applies_in(&self, mode: &OperatingMode) -> bool {
        self.modes.is_empty() || self.modes.contains(mode)
    }

    /// The derived permission policy ("Policy" column).
    pub fn policy(&self) -> PermissionHint {
        self.policy
    }
}

impl fmt::Display for Threat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} → {} | {} | {} | {}",
            self.id, self.description, self.asset, self.stride, self.dread, self.policy
        )
    }
}

/// Builder for [`Threat`].
#[derive(Debug, Clone)]
pub struct ThreatBuilder {
    id: ThreatId,
    description: String,
    asset: AssetId,
    entry_points: Vec<EntryPointId>,
    stride: StrideSet,
    dread: DreadScore,
    modes: Vec<OperatingMode>,
    policy: PermissionHint,
}

impl ThreatBuilder {
    /// Sets the targeted asset.
    pub fn asset(mut self, id: impl Into<AssetId>) -> Self {
        self.asset = id.into();
        self
    }

    /// Adds an exposing entry point.
    pub fn entry_point(mut self, id: impl Into<EntryPointId>) -> Self {
        self.entry_points.push(id.into());
        self
    }

    /// Sets the STRIDE categorisation.
    pub fn stride(mut self, s: StrideSet) -> Self {
        self.stride = s;
        self
    }

    /// Sets the DREAD rating.
    pub fn dread(mut self, d: DreadScore) -> Self {
        self.dread = d;
        self
    }

    /// Adds an applicable operating mode.
    pub fn mode(mut self, m: impl Into<OperatingMode>) -> Self {
        self.modes.push(m.into());
        self
    }

    /// Sets the derived permission policy.
    pub fn policy(mut self, p: PermissionHint) -> Self {
        self.policy = p;
        self
    }

    /// Finishes the threat.
    pub fn build(self) -> Threat {
        Threat {
            id: self.id,
            description: self.description,
            asset: self.asset,
            entry_points: self.entry_points,
            stride: self.stride,
            dread: self.dread,
            modes: self.modes,
            policy: self.policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Threat {
        Threat::builder("t1", "EPS deactivation through compromised CAN node")
            .asset("eps")
            .entry_point("any-node")
            .stride("STD".parse().unwrap())
            .dread(DreadScore::new(5, 5, 5, 6, 7).unwrap())
            .mode("normal")
            .mode("fail-safe")
            .policy(PermissionHint::Read)
            .build()
    }

    #[test]
    fn builder_populates_all_fields() {
        let t = sample();
        assert_eq!(t.id().as_str(), "t1");
        assert_eq!(t.asset().as_str(), "eps");
        assert_eq!(t.entry_points().len(), 1);
        assert_eq!(t.stride().to_string(), "STD");
        assert_eq!(t.dread().average_1dp(), 5.6);
        assert_eq!(t.modes().len(), 2);
        assert_eq!(t.policy(), PermissionHint::Read);
    }

    #[test]
    fn mode_applicability() {
        let t = sample();
        assert!(t.applies_in(&OperatingMode::new("normal")));
        assert!(t.applies_in(&OperatingMode::new("fail-safe")));
        assert!(!t.applies_in(&OperatingMode::new("remote diagnostic")));
    }

    #[test]
    fn empty_modes_means_all() {
        let t = Threat::builder("t2", "x")
            .asset("a")
            .entry_point("e")
            .build();
        assert!(t.applies_in(&OperatingMode::new("anything")));
    }

    #[test]
    fn display_contains_key_columns() {
        let s = sample().to_string();
        assert!(s.contains("eps"));
        assert!(s.contains("STD"));
        assert!(s.contains("(5.6)"));
        assert!(s.contains("| R"));
    }

    #[test]
    fn threats_sort_by_dread_via_key() {
        let mut v = vec![sample()];
        let worse = Threat::builder("t3", "lock during accident")
            .asset("door-locks")
            .entry_point("telematics")
            .dread(DreadScore::new(8, 6, 7, 8, 5).unwrap())
            .build();
        v.push(worse);
        v.sort_by_key(|t| std::cmp::Reverse(t.dread()));
        assert_eq!(v[0].id().as_str(), "t3", "highest risk first");
    }
}
