//! Error type for the threat-modelling crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced while building or validating threat models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelError {
    /// A DREAD component score exceeded the 0–10 scale.
    ScoreOutOfRange {
        /// Which component ("damage", …).
        component: &'static str,
        /// The offending value.
        value: u8,
    },
    /// A STRIDE string contained an unknown letter.
    UnknownStrideLetter {
        /// The offending character.
        letter: char,
    },
    /// A STRIDE string was empty.
    EmptyStride,
    /// Two elements with the same identifier were added.
    DuplicateId {
        /// What kind of element ("asset", "entry point", "threat").
        kind: &'static str,
        /// The duplicated identifier.
        id: String,
    },
    /// A threat referenced an asset not present in the use case.
    UnknownAsset {
        /// The dangling asset id.
        id: String,
    },
    /// A threat referenced an entry point not present in the use case.
    UnknownEntryPoint {
        /// The dangling entry-point id.
        id: String,
    },
    /// A threat referenced an operating mode not declared in the use case.
    UnknownMode {
        /// The dangling mode name.
        name: String,
    },
    /// A use case was finalised without any assets.
    NoAssets,
    /// A threat listed no entry points.
    NoEntryPoints {
        /// The threat's id.
        threat: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ScoreOutOfRange { component, value } => {
                write!(f, "{component} score {value} exceeds the 0-10 scale")
            }
            ModelError::UnknownStrideLetter { letter } => {
                write!(f, "unknown stride letter '{letter}' (expected one of STRIDE)")
            }
            ModelError::EmptyStride => write!(f, "stride string was empty"),
            ModelError::DuplicateId { kind, id } => write!(f, "duplicate {kind} id '{id}'"),
            ModelError::UnknownAsset { id } => write!(f, "threat references unknown asset '{id}'"),
            ModelError::UnknownEntryPoint { id } => {
                write!(f, "threat references unknown entry point '{id}'")
            }
            ModelError::UnknownMode { name } => {
                write!(f, "threat references undeclared mode '{name}'")
            }
            ModelError::NoAssets => write!(f, "use case declares no assets"),
            ModelError::NoEntryPoints { threat } => {
                write!(f, "threat '{threat}' lists no entry points")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert_eq!(
            ModelError::ScoreOutOfRange { component: "damage", value: 11 }.to_string(),
            "damage score 11 exceeds the 0-10 scale"
        );
        assert_eq!(
            ModelError::UnknownStrideLetter { letter: 'X' }.to_string(),
            "unknown stride letter 'X' (expected one of STRIDE)"
        );
        assert!(ModelError::DuplicateId { kind: "asset", id: "ecu".into() }
            .to_string()
            .contains("asset"));
    }

    #[test]
    fn error_trait() {
        fn takes<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes(ModelError::NoAssets);
    }
}
