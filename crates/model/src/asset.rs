//! Critical assets.
//!
//! "Identify Assets" is the second stage of the Fig. 1 pipeline: items of
//! value an adversary may target. Each asset carries a criticality grade
//! that drives countermeasure prioritisation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier for an asset (kebab-case by convention).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AssetId(String);

impl AssetId {
    /// Creates an identifier.
    pub fn new(id: impl Into<String>) -> Self {
        AssetId(id.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AssetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AssetId {
    fn from(s: &str) -> Self {
        AssetId::new(s)
    }
}

/// How severe the consequences of compromising an asset are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Criticality {
    /// Inconvenience only (e.g. media playback).
    Low,
    /// Degraded service or privacy exposure.
    Medium,
    /// Loss of a core vehicle function.
    High,
    /// Direct risk to life (braking, steering, airbags).
    SafetyCritical,
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Criticality::Low => "low",
            Criticality::Medium => "medium",
            Criticality::High => "high",
            Criticality::SafetyCritical => "safety-critical",
        };
        f.write_str(s)
    }
}

/// An item of value that must be protected.
///
/// # Example
/// ```
/// use polsec_model::{Asset, Criticality};
/// let a = Asset::new("ev-ecu", "EV-ECU", Criticality::SafetyCritical)
///     .with_description("accel, brake, transmission control");
/// assert_eq!(a.id().as_str(), "ev-ecu");
/// assert_eq!(a.criticality(), Criticality::SafetyCritical);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Asset {
    id: AssetId,
    name: String,
    description: String,
    criticality: Criticality,
}

impl Asset {
    /// Creates an asset.
    pub fn new(id: impl Into<AssetId>, name: impl Into<String>, criticality: Criticality) -> Self {
        Asset {
            id: id.into(),
            name: name.into(),
            description: String::new(),
            criticality,
        }
    }

    /// Adds a human-readable description (builder style).
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// The asset's identifier.
    pub fn id(&self) -> &AssetId {
        &self.id
    }

    /// The asset's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The asset's description (may be empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The asset's criticality grade.
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }
}

impl From<&str> for Asset {
    /// Convenience: an asset with medium criticality, id == name.
    fn from(s: &str) -> Self {
        Asset::new(s, s, Criticality::Medium)
    }
}

impl fmt::Display for Asset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.criticality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let a = Asset::new("eps", "EPS (Steering)", Criticality::SafetyCritical)
            .with_description("electronic power steering");
        assert_eq!(a.id(), &AssetId::new("eps"));
        assert_eq!(a.name(), "EPS (Steering)");
        assert_eq!(a.description(), "electronic power steering");
        assert_eq!(a.criticality(), Criticality::SafetyCritical);
    }

    #[test]
    fn criticality_is_ordered() {
        assert!(Criticality::Low < Criticality::Medium);
        assert!(Criticality::Medium < Criticality::High);
        assert!(Criticality::High < Criticality::SafetyCritical);
    }

    #[test]
    fn id_conversions_and_display() {
        let id: AssetId = "door-locks".into();
        assert_eq!(id.as_str(), "door-locks");
        assert_eq!(id.to_string(), "door-locks");
    }

    #[test]
    fn from_str_defaults() {
        let a: Asset = "engine".into();
        assert_eq!(a.id().as_str(), "engine");
        assert_eq!(a.criticality(), Criticality::Medium);
    }

    #[test]
    fn display_includes_criticality() {
        let a = Asset::new("x", "Infotainment", Criticality::Low);
        assert_eq!(a.to_string(), "Infotainment (low)");
        assert_eq!(Criticality::SafetyCritical.to_string(), "safety-critical");
    }
}
