//! STRIDE mitigation catalog.
//!
//! The "Determine countermeasure" pipeline stage needs, for each STRIDE
//! category, the canonical mitigation families (authentication for spoofing,
//! integrity protection for tampering, …). [`ThreatCatalog`] captures that
//! mapping and answers queries threats use to propose countermeasures.

use crate::stride::{StrideCategory, StrideSet};
use serde::{Deserialize, Serialize};

/// A canonical mitigation suggestion for a STRIDE category.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mitigation {
    /// The STRIDE category addressed.
    pub category: StrideCategory,
    /// Mitigation family name.
    pub family: String,
    /// Concrete techniques within the family.
    pub techniques: Vec<String>,
}

/// A queryable catalog of standard mitigations per STRIDE category.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreatCatalog {
    mitigations: Vec<Mitigation>,
}

impl Default for ThreatCatalog {
    fn default() -> Self {
        Self::standard()
    }
}

impl ThreatCatalog {
    /// The standard catalog: one mitigation family per STRIDE category, with
    /// the embedded-systems techniques the paper's context calls for.
    pub fn standard() -> Self {
        let m = |category, family: &str, techniques: &[&str]| Mitigation {
            category,
            family: family.to_string(),
            techniques: techniques.iter().map(|s| s.to_string()).collect(),
        };
        ThreatCatalog {
            mitigations: vec![
                m(
                    StrideCategory::Spoofing,
                    "authentication",
                    &[
                        "message authentication codes on bus frames",
                        "sender id verification at the policy engine",
                        "mutual authentication on diagnostic sessions",
                    ],
                ),
                m(
                    StrideCategory::Tampering,
                    "integrity protection",
                    &[
                        "write filtering at entry points",
                        "firmware signature verification",
                        "hardware-enforced approved write lists",
                    ],
                ),
                m(
                    StrideCategory::Repudiation,
                    "audit",
                    &[
                        "tamper-evident event logging",
                        "policy decision audit trail",
                    ],
                ),
                m(
                    StrideCategory::InformationDisclosure,
                    "confidentiality",
                    &[
                        "read filtering at entry points",
                        "encrypting telemetry uplinks",
                        "least-privilege read lists",
                    ],
                ),
                m(
                    StrideCategory::DenialOfService,
                    "availability",
                    &[
                        "rate limiting per message id",
                        "fault confinement (error-passive/bus-off)",
                        "fail-safe operating mode",
                    ],
                ),
                m(
                    StrideCategory::ElevationOfPrivilege,
                    "authorisation",
                    &[
                        "mandatory access control (SELinux-style)",
                        "mode-scoped permissions",
                        "privilege separation between infotainment and control",
                    ],
                ),
            ],
        }
    }

    /// The mitigation entry for a category.
    pub fn for_category(&self, c: StrideCategory) -> Option<&Mitigation> {
        self.mitigations.iter().find(|m| m.category == c)
    }

    /// All mitigation entries relevant to a STRIDE set, in canonical order.
    pub fn for_set(&self, s: StrideSet) -> impl Iterator<Item = &Mitigation> {
        self.mitigations.iter().filter(move |m| s.contains(m.category))
    }

    /// A flat list of technique strings for a STRIDE set (deduplicated,
    /// order-preserving).
    pub fn techniques_for(&self, s: StrideSet) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for m in self.for_set(s) {
            for t in &m.techniques {
                if !out.contains(&t.as_str()) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Number of catalog entries.
    pub fn len(&self) -> usize {
        self.mitigations.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.mitigations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_all_six_categories() {
        let c = ThreatCatalog::standard();
        assert_eq!(c.len(), 6);
        for cat in StrideCategory::ALL {
            let m = c.for_category(cat).unwrap_or_else(|| panic!("missing {cat}"));
            assert!(!m.techniques.is_empty());
        }
    }

    #[test]
    fn for_set_filters() {
        let c = ThreatCatalog::standard();
        let s: StrideSet = "SD".parse().unwrap();
        let fams: Vec<&str> = c.for_set(s).map(|m| m.family.as_str()).collect();
        assert_eq!(fams, vec!["authentication", "availability"]);
    }

    #[test]
    fn techniques_flatten_and_dedup() {
        let c = ThreatCatalog::standard();
        let all = c.techniques_for(StrideSet::all());
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(all.len(), sorted.len(), "no duplicates");
        assert!(all.len() >= 12);
    }

    #[test]
    fn empty_set_yields_nothing() {
        let c = ThreatCatalog::standard();
        assert!(c.techniques_for(StrideSet::EMPTY).is_empty());
        assert!(!c.is_empty());
    }

    #[test]
    fn spoofing_mitigation_mentions_id_verification() {
        // the paper's HPE enforces "CAN ID verification"; the catalog must
        // point the spoofing category at it
        let c = ThreatCatalog::standard();
        let m = c.for_category(StrideCategory::Spoofing).unwrap();
        assert!(m.techniques.iter().any(|t| t.contains("id verification")));
    }
}
