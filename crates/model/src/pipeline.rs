//! The application threat-modelling pipeline (Fig. 1).
//!
//! The paper's Fig. 1 shows six tasks feeding the device security model:
//! risk assessment → identify assets → entry points → threat identification
//! → threat rating → determine countermeasures. [`ThreatModelPipeline::run`]
//! executes those stages over a validated [`UseCase`], producing a
//! [`SecurityModel`]: the per-stage reports, the guideline countermeasures
//! (the traditional output) **and** the machine-readable [`PolicySpec`]s
//! (the paper's contribution — "the device security model … can be defined
//! as access control policies").

use crate::catalog::ThreatCatalog;
use crate::countermeasure::{Countermeasure, PolicySpec};
use crate::risk::{RiskMatrix, RiskQuadrant};
use crate::threat::ThreatId;
use crate::usecase::UseCase;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A report from one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageReport {
    /// The stage name as in Fig. 1.
    pub stage: String,
    /// One-line summary.
    pub summary: String,
    /// Itemised findings.
    pub items: Vec<String>,
}

impl fmt::Display for StageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.stage)?;
        writeln!(f, "{}", self.summary)?;
        for item in &self.items {
            writeln!(f, "  - {item}")?;
        }
        Ok(())
    }
}

/// The pipeline's output: the device security model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityModel {
    use_case: UseCase,
    stages: Vec<StageReport>,
    countermeasures: Vec<(ThreatId, Countermeasure)>,
}

impl SecurityModel {
    /// The analysed use case.
    pub fn use_case(&self) -> &UseCase {
        &self.use_case
    }

    /// Per-stage reports, in pipeline order.
    pub fn stages(&self) -> &[StageReport] {
        &self.stages
    }

    /// All countermeasures (both guideline and policy kinds), keyed by the
    /// threat they answer.
    pub fn countermeasures(&self) -> &[(ThreatId, Countermeasure)] {
        &self.countermeasures
    }

    /// Only the machine-readable policy specifications — the input to
    /// `polsec-core`'s policy compiler.
    pub fn policy_specs(&self) -> Vec<&PolicySpec> {
        self.countermeasures
            .iter()
            .filter_map(|(_, c)| match c {
                Countermeasure::Policy { spec } => Some(spec),
                Countermeasure::Guideline { .. } => None,
            })
            .collect()
    }

    /// Only the guideline texts — the traditional security model output.
    pub fn guidelines(&self) -> Vec<&str> {
        self.countermeasures
            .iter()
            .filter_map(|(_, c)| match c {
                Countermeasure::Guideline { text } => Some(text.as_str()),
                Countermeasure::Policy { .. } => None,
            })
            .collect()
    }
}

/// The six-stage pipeline with its configuration.
#[derive(Debug, Clone)]
pub struct ThreatModelPipeline {
    matrix: RiskMatrix,
    catalog: ThreatCatalog,
}

impl Default for ThreatModelPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreatModelPipeline {
    /// Creates a pipeline with the default risk matrix and standard catalog.
    pub fn new() -> Self {
        ThreatModelPipeline {
            matrix: RiskMatrix::new(),
            catalog: ThreatCatalog::standard(),
        }
    }

    /// Overrides the risk matrix thresholds.
    pub fn with_matrix(mut self, m: RiskMatrix) -> Self {
        self.matrix = m;
        self
    }

    /// Runs all six stages over a use case.
    pub fn run(&self, use_case: &UseCase) -> SecurityModel {
        let mut stages = Vec::with_capacity(6);

        // Stage 1: risk assessment — decompose and understand the use case.
        let remote = use_case
            .entry_points()
            .iter()
            .filter(|e| e.is_remote())
            .count();
        stages.push(StageReport {
            stage: "Risk assessment".into(),
            summary: format!(
                "use case '{}': {} assets, {} entry points ({} remote), {} modes",
                use_case.name(),
                use_case.assets().len(),
                use_case.entry_points().len(),
                remote,
                use_case.modes().len()
            ),
            items: use_case
                .modes()
                .iter()
                .map(|m| format!("operating mode: {m}"))
                .collect(),
        });

        // Stage 2: identify assets.
        let mut assets: Vec<_> = use_case.assets().iter().collect();
        assets.sort_by_key(|a| std::cmp::Reverse(a.criticality()));
        stages.push(StageReport {
            stage: "Identify assets".into(),
            summary: format!("{} assets ordered by criticality", assets.len()),
            items: assets.iter().map(|a| a.to_string()).collect(),
        });

        // Stage 3: entry points.
        stages.push(StageReport {
            stage: "Entry points".into(),
            summary: format!("{} interfaces expose the assets", use_case.entry_points().len()),
            items: use_case
                .entry_points()
                .iter()
                .map(|e| {
                    format!(
                        "{e}{}",
                        if e.is_remote() { " (remote)" } else { "" }
                    )
                })
                .collect(),
        });

        // Stage 4: threat identification (STRIDE).
        stages.push(StageReport {
            stage: "Threat identification".into(),
            summary: format!("{} threats categorised with STRIDE", use_case.threats().len()),
            items: use_case
                .threats()
                .iter()
                .map(|t| format!("[{}] {} — {}", t.stride(), t.id(), t.description()))
                .collect(),
        });

        // Stage 5: threat rating (DREAD + risk matrix).
        let prioritised = use_case.threats_by_risk();
        let mut rating_items: Vec<String> = prioritised
            .iter()
            .map(|t| {
                format!(
                    "{} — DREAD {} [{}]",
                    t.id(),
                    t.dread(),
                    self.matrix.classify(t.dread())
                )
            })
            .collect();
        let priority_count = use_case
            .threats()
            .iter()
            .filter(|t| self.matrix.classify(t.dread()) == RiskQuadrant::Priority)
            .count();
        rating_items.push(format!("{priority_count} threats in the priority quadrant"));
        stages.push(StageReport {
            stage: "Threat rating".into(),
            summary: "threats prioritised by DREAD average".into(),
            items: rating_items,
        });

        // Stage 6: determine countermeasures — both kinds per threat.
        let mut countermeasures = Vec::new();
        let mut cm_items = Vec::new();
        for t in &prioritised {
            // Guideline: assembled from the catalog's technique families.
            let techniques = self.catalog.techniques_for(t.stride());
            let guideline = format!(
                "{}: apply {}",
                t.asset(),
                if techniques.is_empty() {
                    "best security practices".to_string()
                } else {
                    techniques.join("; ")
                }
            );
            countermeasures.push((
                t.id().clone(),
                Countermeasure::Guideline { text: guideline.clone() },
            ));
            // Policy: the machine-readable spec from the Table I policy column.
            let spec = PolicySpec {
                asset: t.asset().clone(),
                entry_points: t.entry_points().to_vec(),
                permission: t.policy(),
                modes: t.modes().to_vec(),
                rationale: t.description().to_string(),
            };
            cm_items.push(format!("{} ⇒ {}", t.id(), spec));
            countermeasures.push((t.id().clone(), Countermeasure::Policy { spec }));
        }
        stages.push(StageReport {
            stage: "Determine countermeasures".into(),
            summary: format!(
                "{} guideline + {} policy countermeasures derived",
                countermeasures.len() / 2,
                countermeasures.len() / 2
            ),
            items: cm_items,
        });

        SecurityModel {
            use_case: use_case.clone(),
            stages,
            countermeasures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::{Asset, Criticality};
    use crate::countermeasure::PermissionHint;
    use crate::dread::DreadScore;
    use crate::entry_point::{EntryPoint, InterfaceKind};
    use crate::threat::Threat;

    fn demo_use_case() -> UseCase {
        UseCase::builder("demo car")
            .asset(Asset::new("ecu", "EV-ECU", Criticality::SafetyCritical))
            .asset(Asset::new("infotainment", "Infotainment", Criticality::Low))
            .entry_point(EntryPoint::new("telematics", "3G/4G/WiFi", InterfaceKind::Network))
            .entry_point(EntryPoint::new("sensors", "Sensors", InterfaceKind::Sensor))
            .mode("normal")
            .mode("fail-safe")
            .threat(
                Threat::builder("spoof-ecu", "Spoofed data disables ECU")
                    .asset("ecu")
                    .entry_point("sensors")
                    .stride("STD".parse().unwrap())
                    .dread(DreadScore::new(8, 5, 4, 6, 4).unwrap())
                    .mode("normal")
                    .policy(PermissionHint::Read)
                    .build(),
            )
            .threat(
                Threat::builder("info-exploit", "Browser exploit escalates control")
                    .asset("infotainment")
                    .entry_point("telematics")
                    .stride("STE".parse().unwrap())
                    .dread(DreadScore::new(7, 5, 6, 8, 6).unwrap())
                    .mode("normal")
                    .policy(PermissionHint::Read)
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn pipeline_produces_six_stages_in_order() {
        let model = ThreatModelPipeline::new().run(&demo_use_case());
        let names: Vec<&str> = model.stages().iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Risk assessment",
                "Identify assets",
                "Entry points",
                "Threat identification",
                "Threat rating",
                "Determine countermeasures",
            ]
        );
    }

    #[test]
    fn risk_assessment_counts_remote_surface() {
        let model = ThreatModelPipeline::new().run(&demo_use_case());
        assert!(model.stages()[0].summary.contains("(1 remote)"));
    }

    #[test]
    fn assets_ordered_by_criticality() {
        let model = ThreatModelPipeline::new().run(&demo_use_case());
        let items = &model.stages()[1].items;
        assert!(items[0].contains("EV-ECU"), "safety-critical first: {items:?}");
    }

    #[test]
    fn each_threat_gets_guideline_and_policy() {
        let model = ThreatModelPipeline::new().run(&demo_use_case());
        assert_eq!(model.countermeasures().len(), 4);
        assert_eq!(model.policy_specs().len(), 2);
        assert_eq!(model.guidelines().len(), 2);
    }

    #[test]
    fn policy_specs_carry_threat_data() {
        let model = ThreatModelPipeline::new().run(&demo_use_case());
        let specs = model.policy_specs();
        let ecu_spec = specs.iter().find(|s| s.asset.as_str() == "ecu").unwrap();
        assert_eq!(ecu_spec.permission, PermissionHint::Read);
        assert_eq!(ecu_spec.entry_points.len(), 1);
        assert_eq!(ecu_spec.modes.len(), 1);
        assert!(ecu_spec.rationale.contains("Spoofed"));
    }

    #[test]
    fn guidelines_reference_catalog_techniques() {
        let model = ThreatModelPipeline::new().run(&demo_use_case());
        let guidelines = model.guidelines();
        // the STD threat must pull authentication + integrity + availability
        assert!(guidelines
            .iter()
            .any(|g| g.contains("id verification") && g.contains("rate limiting")));
    }

    #[test]
    fn rating_stage_prioritises_by_dread() {
        let model = ThreatModelPipeline::new().run(&demo_use_case());
        let rating = &model.stages()[4];
        // info-exploit (6.4) must come before spoof-ecu (5.4)
        let first = rating.items.iter().position(|i| i.contains("info-exploit"));
        let second = rating.items.iter().position(|i| i.contains("spoof-ecu"));
        assert!(first.unwrap() < second.unwrap());
    }

    #[test]
    fn stage_report_display() {
        let s = StageReport {
            stage: "X".into(),
            summary: "sum".into(),
            items: vec!["a".into()],
        };
        let text = s.to_string();
        assert!(text.contains("== X =="));
        assert!(text.contains("  - a"));
    }
}
