//! # polsec-model — application threat modelling
//!
//! Executable versions of the threat-modelling artefacts the paper builds on
//! (its §II "Background" and Fig. 1):
//!
//! * [`StrideSet`] — STRIDE threat categorisation, parsing the paper's
//!   compact letter strings ("STD", "STIDE", "TIE", …),
//! * [`DreadScore`] — DREAD risk vectors with the averaged rating used in
//!   Table I,
//! * [`Asset`] / [`EntryPoint`] / [`Threat`] / [`UseCase`] — the system
//!   decomposition of an application use case,
//! * [`pipeline`] — the six-stage application threat-modelling pipeline of
//!   Fig. 1, producing a [`SecurityModel`],
//! * [`countermeasure`] — guideline-based vs policy-based countermeasures
//!   with the remediation cost model behind the paper's §V.A.3 comparison,
//! * [`report`] — markdown rendering of the security model (the Table I
//!   generator).
//!
//! # Example
//!
//! ```
//! use polsec_model::{DreadScore, StrideSet};
//!
//! let stride: StrideSet = "STD".parse()?;
//! assert!(stride.contains(polsec_model::StrideCategory::Spoofing));
//!
//! let dread = DreadScore::new(8, 5, 4, 6, 4)?;
//! assert!((dread.average() - 5.4).abs() < 1e-9);
//! # Ok::<(), polsec_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asset;
pub mod catalog;
pub mod countermeasure;
pub mod dread;
pub mod entry_point;
pub mod error;
pub mod mode;
pub mod pipeline;
pub mod report;
pub mod risk;
pub mod stride;
pub mod threat;
pub mod usecase;

pub use asset::{Asset, AssetId, Criticality};
pub use catalog::ThreatCatalog;
pub use countermeasure::{Countermeasure, PermissionHint, PolicySpec, RemediationCost};
pub use dread::{DreadScore, RiskRating};
pub use entry_point::{EntryPoint, EntryPointId, InterfaceKind};
pub use error::ModelError;
pub use mode::OperatingMode;
pub use pipeline::{SecurityModel, StageReport, ThreatModelPipeline};
pub use risk::{Likelihood, RiskMatrix, RiskQuadrant};
pub use stride::{StrideCategory, StrideSet};
pub use threat::{Threat, ThreatId};
pub use usecase::{UseCase, UseCaseBuilder};
