//! Application use cases.
//!
//! A [`UseCase`] is the input to the Fig. 1 pipeline: the decomposed
//! application with its assets, entry points, declared operating modes and
//! identified threats. [`UseCaseBuilder::build`] validates referential
//! integrity (every threat must reference declared assets, entry points and
//! modes) so later stages can index without checking.

use crate::asset::{Asset, AssetId};
use crate::entry_point::{EntryPoint, EntryPointId};
use crate::error::ModelError;
use crate::mode::OperatingMode;
use crate::threat::{Threat, ThreatId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A validated application use case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UseCase {
    name: String,
    description: String,
    assets: Vec<Asset>,
    entry_points: Vec<EntryPoint>,
    modes: Vec<OperatingMode>,
    threats: Vec<Threat>,
}

impl UseCase {
    /// Starts building a use case.
    pub fn builder(name: impl Into<String>) -> UseCaseBuilder {
        UseCaseBuilder {
            name: name.into(),
            description: String::new(),
            assets: Vec::new(),
            entry_points: Vec::new(),
            modes: Vec::new(),
            threats: Vec::new(),
        }
    }

    /// The use case name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The description (may be empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Declared assets.
    pub fn assets(&self) -> &[Asset] {
        &self.assets
    }

    /// Declared entry points.
    pub fn entry_points(&self) -> &[EntryPoint] {
        &self.entry_points
    }

    /// Declared operating modes.
    pub fn modes(&self) -> &[OperatingMode] {
        &self.modes
    }

    /// Identified threats.
    pub fn threats(&self) -> &[Threat] {
        &self.threats
    }

    /// Looks up an asset by id.
    pub fn asset(&self, id: &AssetId) -> Option<&Asset> {
        self.assets.iter().find(|a| a.id() == id)
    }

    /// Looks up an entry point by id.
    pub fn entry_point(&self, id: &EntryPointId) -> Option<&EntryPoint> {
        self.entry_points.iter().find(|e| e.id() == id)
    }

    /// Looks up a threat by id.
    pub fn threat(&self, id: &ThreatId) -> Option<&Threat> {
        self.threats.iter().find(|t| t.id() == id)
    }

    /// Threats against a given asset.
    pub fn threats_against<'a>(&'a self, id: &'a AssetId) -> impl Iterator<Item = &'a Threat> {
        self.threats.iter().filter(move |t| t.asset() == id)
    }

    /// Threats ordered by descending DREAD rating (prioritisation order).
    pub fn threats_by_risk(&self) -> Vec<&Threat> {
        let mut v: Vec<&Threat> = self.threats.iter().collect();
        v.sort_by(|a, b| b.dread().cmp(&a.dread()).then_with(|| a.id().cmp(b.id())));
        v
    }
}

/// Builder for [`UseCase`] with validation at `build`.
///
/// # Example
/// ```
/// use polsec_model::{Asset, Criticality, EntryPoint, InterfaceKind, UseCase};
///
/// let uc = UseCase::builder("demo")
///     .asset(Asset::new("ecu", "ECU", Criticality::High))
///     .entry_point(EntryPoint::new("can", "CAN bus", InterfaceKind::Bus))
///     .mode("normal")
///     .build()?;
/// assert_eq!(uc.assets().len(), 1);
/// # Ok::<(), polsec_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct UseCaseBuilder {
    name: String,
    description: String,
    assets: Vec<Asset>,
    entry_points: Vec<EntryPoint>,
    modes: Vec<OperatingMode>,
    threats: Vec<Threat>,
}

impl UseCaseBuilder {
    /// Sets the description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// Declares an asset.
    pub fn asset(mut self, a: Asset) -> Self {
        self.assets.push(a);
        self
    }

    /// Declares an entry point.
    pub fn entry_point(mut self, e: EntryPoint) -> Self {
        self.entry_points.push(e);
        self
    }

    /// Declares an operating mode.
    pub fn mode(mut self, m: impl Into<OperatingMode>) -> Self {
        self.modes.push(m.into());
        self
    }

    /// Records an identified threat.
    pub fn threat(mut self, t: Threat) -> Self {
        self.threats.push(t);
        self
    }

    /// Validates and finishes the use case.
    ///
    /// # Errors
    /// * [`ModelError::NoAssets`] — no assets declared;
    /// * [`ModelError::DuplicateId`] — repeated asset/entry-point/threat ids;
    /// * [`ModelError::UnknownAsset`] / [`ModelError::UnknownEntryPoint`] /
    ///   [`ModelError::UnknownMode`] — a threat referencing undeclared parts;
    /// * [`ModelError::NoEntryPoints`] — a threat listing no entry points.
    pub fn build(self) -> Result<UseCase, ModelError> {
        if self.assets.is_empty() {
            return Err(ModelError::NoAssets);
        }
        let mut asset_ids = BTreeSet::new();
        for a in &self.assets {
            if !asset_ids.insert(a.id().clone()) {
                return Err(ModelError::DuplicateId {
                    kind: "asset",
                    id: a.id().to_string(),
                });
            }
        }
        let mut ep_ids = BTreeSet::new();
        for e in &self.entry_points {
            if !ep_ids.insert(e.id().clone()) {
                return Err(ModelError::DuplicateId {
                    kind: "entry point",
                    id: e.id().to_string(),
                });
            }
        }
        let mode_set: BTreeSet<&OperatingMode> = self.modes.iter().collect();
        let mut threat_ids = BTreeSet::new();
        for t in &self.threats {
            if !threat_ids.insert(t.id().clone()) {
                return Err(ModelError::DuplicateId {
                    kind: "threat",
                    id: t.id().to_string(),
                });
            }
            if !asset_ids.contains(t.asset()) {
                return Err(ModelError::UnknownAsset {
                    id: t.asset().to_string(),
                });
            }
            if t.entry_points().is_empty() {
                return Err(ModelError::NoEntryPoints {
                    threat: t.id().to_string(),
                });
            }
            for ep in t.entry_points() {
                if !ep_ids.contains(ep) {
                    return Err(ModelError::UnknownEntryPoint { id: ep.to_string() });
                }
            }
            for m in t.modes() {
                if !mode_set.contains(m) {
                    return Err(ModelError::UnknownMode {
                        name: m.name().to_string(),
                    });
                }
            }
        }
        Ok(UseCase {
            name: self.name,
            description: self.description,
            assets: self.assets,
            entry_points: self.entry_points,
            modes: self.modes,
            threats: self.threats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::Criticality;
    use crate::countermeasure::PermissionHint;
    use crate::dread::DreadScore;
    use crate::entry_point::InterfaceKind;

    fn minimal() -> UseCaseBuilder {
        UseCase::builder("test")
            .asset(Asset::new("ecu", "ECU", Criticality::High))
            .entry_point(EntryPoint::new("can", "CAN", InterfaceKind::Bus))
            .mode("normal")
    }

    fn threat(id: &str) -> Threat {
        Threat::builder(id, "spoof")
            .asset("ecu")
            .entry_point("can")
            .stride("S".parse().unwrap())
            .dread(DreadScore::new(5, 5, 5, 5, 5).unwrap())
            .mode("normal")
            .policy(PermissionHint::Read)
            .build()
    }

    #[test]
    fn valid_use_case_builds() {
        let uc = minimal().threat(threat("t1")).build().unwrap();
        assert_eq!(uc.name(), "test");
        assert_eq!(uc.threats().len(), 1);
        assert!(uc.asset(&AssetId::new("ecu")).is_some());
        assert!(uc.entry_point(&EntryPointId::new("can")).is_some());
        assert!(uc.threat(&ThreatId::new("t1")).is_some());
    }

    #[test]
    fn no_assets_rejected() {
        let err = UseCase::builder("x").build().unwrap_err();
        assert_eq!(err, ModelError::NoAssets);
    }

    #[test]
    fn duplicate_asset_rejected() {
        let err = minimal()
            .asset(Asset::new("ecu", "ECU again", Criticality::Low))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateId { kind: "asset", .. }));
    }

    #[test]
    fn duplicate_entry_point_rejected() {
        let err = minimal()
            .entry_point(EntryPoint::new("can", "CAN2", InterfaceKind::Bus))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateId { kind: "entry point", .. }));
    }

    #[test]
    fn duplicate_threat_rejected() {
        let err = minimal()
            .threat(threat("t1"))
            .threat(threat("t1"))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateId { kind: "threat", .. }));
    }

    #[test]
    fn dangling_asset_reference_rejected() {
        let t = Threat::builder("t1", "x")
            .asset("ghost")
            .entry_point("can")
            .build();
        let err = minimal().threat(t).build().unwrap_err();
        assert_eq!(err, ModelError::UnknownAsset { id: "ghost".into() });
    }

    #[test]
    fn dangling_entry_point_rejected() {
        let t = Threat::builder("t1", "x")
            .asset("ecu")
            .entry_point("ghost")
            .build();
        let err = minimal().threat(t).build().unwrap_err();
        assert_eq!(err, ModelError::UnknownEntryPoint { id: "ghost".into() });
    }

    #[test]
    fn dangling_mode_rejected() {
        let t = Threat::builder("t1", "x")
            .asset("ecu")
            .entry_point("can")
            .mode("warp")
            .build();
        let err = minimal().threat(t).build().unwrap_err();
        assert_eq!(err, ModelError::UnknownMode { name: "warp".into() });
    }

    #[test]
    fn threat_without_entry_points_rejected() {
        let t = Threat::builder("t1", "x").asset("ecu").build();
        let err = minimal().threat(t).build().unwrap_err();
        assert_eq!(err, ModelError::NoEntryPoints { threat: "t1".into() });
    }

    #[test]
    fn threats_by_risk_sorts_descending() {
        let t_low = Threat::builder("low", "x")
            .asset("ecu")
            .entry_point("can")
            .dread(DreadScore::new(1, 1, 1, 1, 1).unwrap())
            .build();
        let t_high = Threat::builder("high", "y")
            .asset("ecu")
            .entry_point("can")
            .dread(DreadScore::new(9, 9, 9, 9, 9).unwrap())
            .build();
        let uc = minimal().threat(t_low).threat(t_high).build().unwrap();
        let ordered = uc.threats_by_risk();
        assert_eq!(ordered[0].id().as_str(), "high");
        assert_eq!(ordered[1].id().as_str(), "low");
    }

    #[test]
    fn threats_against_filters_by_asset() {
        let uc = minimal()
            .asset(Asset::new("eps", "EPS", Criticality::SafetyCritical))
            .threat(threat("t1"))
            .build()
            .unwrap();
        assert_eq!(uc.threats_against(&AssetId::new("ecu")).count(), 1);
        assert_eq!(uc.threats_against(&AssetId::new("eps")).count(), 0);
    }
}
