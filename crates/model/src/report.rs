//! Security-model reports.
//!
//! [`render_threat_table`] regenerates the paper's Table I from a validated
//! use case: one row per threat with asset, per-mode applicability ticks,
//! entry points, description, STRIDE letters, the DREAD vector with average,
//! and the derived policy. [`render_security_model`] renders the full
//! pipeline output as a markdown document (the "technical document that
//! provides security guidelines" of §I, plus the policy annex).

use crate::pipeline::SecurityModel;
use crate::usecase::UseCase;

/// Renders the Table I-style threat table as GitHub-flavoured markdown.
///
/// Mode columns use each declared mode's capitalised initial letters; a `x`
/// marks the modes a threat applies in (a threat with no declared modes
/// applies in all and is ticked everywhere).
pub fn render_threat_table(uc: &UseCase) -> String {
    let mut out = String::new();
    let modes = uc.modes();

    // header
    out.push_str("| Critical Asset |");
    for m in modes {
        out.push_str(&format!(" {} |", mode_abbrev(m.name())));
    }
    out.push_str(" Entry Points | Potential Threat | STRIDE | DREAD (Avg.) | Policy |\n");
    out.push_str("|---|");
    for _ in modes {
        out.push_str("---|");
    }
    out.push_str("---|---|---|---|---|\n");

    for t in uc.threats() {
        let asset_name = uc
            .asset(t.asset())
            .map(|a| a.name().to_string())
            .unwrap_or_else(|| t.asset().to_string());
        out.push_str(&format!("| {asset_name} |"));
        for m in modes {
            out.push_str(if t.applies_in(m) { " x |" } else { "   |" });
        }
        let eps: Vec<String> = t
            .entry_points()
            .iter()
            .map(|e| {
                uc.entry_point(e)
                    .map(|ep| ep.name().to_string())
                    .unwrap_or_else(|| e.to_string())
            })
            .collect();
        out.push_str(&format!(
            " {} | {} | {} | {} | {} |\n",
            eps.join(", "),
            t.description(),
            t.stride(),
            t.dread(),
            t.policy()
        ));
    }
    out
}

fn mode_abbrev(name: &str) -> String {
    // "remote diagnostic" → "RD", "fail-safe" → "FS", "normal" → "N"
    name.split(|c: char| c.is_whitespace() || c == '-' || c == '_')
        .filter(|w| !w.is_empty())
        .map(|w| {
            w.chars()
                .next()
                .map(|c| c.to_ascii_uppercase())
                .unwrap_or('?')
        })
        .collect()
}

/// Renders the full security model (pipeline stages + threat table +
/// countermeasure annex) as a markdown document.
pub fn render_security_model(model: &SecurityModel) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Security model: {}\n\n",
        model.use_case().name()
    ));
    if !model.use_case().description().is_empty() {
        out.push_str(model.use_case().description());
        out.push_str("\n\n");
    }

    out.push_str("## Threat modelling pipeline\n\n");
    for stage in model.stages() {
        out.push_str(&format!("### {}\n\n{}\n\n", stage.stage, stage.summary));
        for item in &stage.items {
            out.push_str(&format!("- {item}\n"));
        }
        out.push('\n');
    }

    out.push_str("## Threat table\n\n");
    out.push_str(&render_threat_table(model.use_case()));
    out.push('\n');

    out.push_str("## Countermeasures\n\n");
    for (tid, cm) in model.countermeasures() {
        out.push_str(&format!("- **{tid}** — {cm}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::{Asset, Criticality};
    use crate::countermeasure::PermissionHint;
    use crate::dread::DreadScore;
    use crate::entry_point::{EntryPoint, InterfaceKind};
    use crate::pipeline::ThreatModelPipeline;
    use crate::threat::Threat;

    fn uc() -> UseCase {
        UseCase::builder("connected car")
            .asset(Asset::new("ev-ecu", "EV-ECU", Criticality::SafetyCritical))
            .entry_point(EntryPoint::new("sensors", "Sensors", InterfaceKind::Sensor))
            .mode("normal")
            .mode("remote diagnostic")
            .mode("fail-safe")
            .threat(
                Threat::builder("t1", "Spoofed data over CANbus causing disablement of ECU")
                    .asset("ev-ecu")
                    .entry_point("sensors")
                    .stride("STD".parse().unwrap())
                    .dread(DreadScore::new(8, 5, 4, 6, 4).unwrap())
                    .mode("normal")
                    .policy(PermissionHint::Read)
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn table_contains_paper_notation() {
        let table = render_threat_table(&uc());
        assert!(table.contains("| EV-ECU |"));
        assert!(table.contains("STD"));
        assert!(table.contains("8,5,4,6,4 (5.4)"));
        assert!(table.contains("| R |"));
    }

    #[test]
    fn mode_columns_abbreviated_and_ticked() {
        let table = render_threat_table(&uc());
        let header = table.lines().next().unwrap();
        assert!(header.contains(" N |"));
        assert!(header.contains(" RD |"));
        assert!(header.contains(" FS |"));
        // threat applies only in normal
        let row = table.lines().nth(2).unwrap();
        assert!(row.starts_with("| EV-ECU | x |"));
    }

    #[test]
    fn threat_without_modes_ticks_all() {
        let base = uc();
        let uc2 = UseCase::builder("x")
            .asset(base.assets()[0].clone())
            .entry_point(base.entry_points()[0].clone())
            .mode("normal")
            .mode("fail-safe")
            .threat(
                Threat::builder("t", "always-on threat")
                    .asset("ev-ecu")
                    .entry_point("sensors")
                    .build(),
            )
            .build()
            .unwrap();
        let table = render_threat_table(&uc2);
        let row = table.lines().nth(2).unwrap();
        assert!(row.contains("| x | x |"));
    }

    #[test]
    fn mode_abbrev_rules() {
        assert_eq!(mode_abbrev("normal"), "N");
        assert_eq!(mode_abbrev("remote diagnostic"), "RD");
        assert_eq!(mode_abbrev("fail-safe"), "FS");
        assert_eq!(mode_abbrev("a_b c"), "ABC");
    }

    #[test]
    fn full_document_has_all_sections() {
        let model = ThreatModelPipeline::new().run(&uc());
        let doc = render_security_model(&model);
        assert!(doc.contains("# Security model: connected car"));
        assert!(doc.contains("## Threat modelling pipeline"));
        assert!(doc.contains("### Risk assessment"));
        assert!(doc.contains("## Threat table"));
        assert!(doc.contains("## Countermeasures"));
        assert!(doc.contains("guideline:"));
        assert!(doc.contains("policy:"));
    }
}
