//! Entry points.
//!
//! "Entry Points … are interfaces that expose critical assets to the
//! attacker, and can be used to interact with the system or application"
//! (paper §II). Each entry point names the interface class it belongs to so
//! policies can be scoped per interface kind.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier for an entry point.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntryPointId(String);

impl EntryPointId {
    /// Creates an identifier.
    pub fn new(id: impl Into<String>) -> Self {
        EntryPointId(id.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EntryPointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for EntryPointId {
    fn from(s: &str) -> Self {
        EntryPointId::new(s)
    }
}

/// The class of interface an entry point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterfaceKind {
    /// Wide-area network access (3G/4G/WiFi in the case study).
    Network,
    /// An internal field bus (CAN in the case study).
    Bus,
    /// Physically accessible connector or control (OBD port, manual lock).
    Physical,
    /// Short-range wireless (Bluetooth, key fob).
    Wireless,
    /// Human-facing UI (media display, browser).
    UserInterface,
    /// A sensor feeding the system (wheel speed, radar).
    Sensor,
}

impl fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InterfaceKind::Network => "network",
            InterfaceKind::Bus => "bus",
            InterfaceKind::Physical => "physical",
            InterfaceKind::Wireless => "wireless",
            InterfaceKind::UserInterface => "user-interface",
            InterfaceKind::Sensor => "sensor",
        };
        f.write_str(s)
    }
}

/// An interface through which an attacker can reach assets.
///
/// # Example
/// ```
/// use polsec_model::{EntryPoint, InterfaceKind};
/// let ep = EntryPoint::new("telematics", "3G/4G/WiFi", InterfaceKind::Network);
/// assert_eq!(ep.kind(), InterfaceKind::Network);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryPoint {
    id: EntryPointId,
    name: String,
    kind: InterfaceKind,
    description: String,
}

impl EntryPoint {
    /// Creates an entry point.
    pub fn new(
        id: impl Into<EntryPointId>,
        name: impl Into<String>,
        kind: InterfaceKind,
    ) -> Self {
        EntryPoint {
            id: id.into(),
            name: name.into(),
            kind,
            description: String::new(),
        }
    }

    /// Adds a description (builder style).
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// The entry point's identifier.
    pub fn id(&self) -> &EntryPointId {
        &self.id
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interface class.
    pub fn kind(&self) -> InterfaceKind {
        self.kind
    }

    /// The description (may be empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Whether this interface is remotely reachable (network or wireless) —
    /// remote entry points raise a threat's reachable attack surface.
    pub fn is_remote(&self) -> bool {
        matches!(self.kind, InterfaceKind::Network | InterfaceKind::Wireless)
    }
}

impl fmt::Display for EntryPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let ep = EntryPoint::new("can-bus", "CAN bus", InterfaceKind::Bus)
            .with_description("shared broadcast bus");
        assert_eq!(ep.id().as_str(), "can-bus");
        assert_eq!(ep.name(), "CAN bus");
        assert_eq!(ep.kind(), InterfaceKind::Bus);
        assert_eq!(ep.description(), "shared broadcast bus");
    }

    #[test]
    fn remote_classification() {
        assert!(EntryPoint::new("t", "3G", InterfaceKind::Network).is_remote());
        assert!(EntryPoint::new("b", "BT", InterfaceKind::Wireless).is_remote());
        assert!(!EntryPoint::new("c", "CAN", InterfaceKind::Bus).is_remote());
        assert!(!EntryPoint::new("o", "OBD", InterfaceKind::Physical).is_remote());
        assert!(!EntryPoint::new("s", "radar", InterfaceKind::Sensor).is_remote());
        assert!(!EntryPoint::new("u", "display", InterfaceKind::UserInterface).is_remote());
    }

    #[test]
    fn display_formats() {
        let ep = EntryPoint::new("x", "Media browser", InterfaceKind::UserInterface);
        assert_eq!(ep.to_string(), "Media browser [user-interface]");
        assert_eq!(InterfaceKind::Sensor.to_string(), "sensor");
    }

    #[test]
    fn id_from_str() {
        let id: EntryPointId = "sensors".into();
        assert_eq!(id.to_string(), "sensors");
    }
}
