//! DREAD risk rating.
//!
//! DREAD quantifies a threat along five axes, each scored 0–10:
//! **D**amage potential, **R**eproducibility, **E**xploitability,
//! **A**ffected users, **D**iscoverability. The paper's Table I reports a
//! five-component vector plus its arithmetic mean, e.g. `8,5,4,6,4 (5.4)`;
//! [`DreadScore`] reproduces that exact notation and arithmetic.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Maximum value of each DREAD component.
pub const MAX_COMPONENT: u8 = 10;

/// A validated DREAD score vector.
///
/// # Example
/// ```
/// use polsec_model::DreadScore;
/// let d = DreadScore::new(8, 6, 7, 8, 5)?; // lock-during-accident row
/// assert!((d.average() - 6.8).abs() < 1e-9);
/// assert_eq!(d.to_string(), "8,6,7,8,5 (6.8)");
/// # Ok::<(), polsec_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DreadScore {
    damage: u8,
    reproducibility: u8,
    exploitability: u8,
    affected_users: u8,
    discoverability: u8,
}

impl DreadScore {
    /// Creates a score vector, validating each component against the 0–10
    /// scale.
    ///
    /// # Errors
    /// [`ModelError::ScoreOutOfRange`] naming the offending component.
    pub fn new(
        damage: u8,
        reproducibility: u8,
        exploitability: u8,
        affected_users: u8,
        discoverability: u8,
    ) -> Result<Self, ModelError> {
        for (component, value) in [
            ("damage", damage),
            ("reproducibility", reproducibility),
            ("exploitability", exploitability),
            ("affected users", affected_users),
            ("discoverability", discoverability),
        ] {
            if value > MAX_COMPONENT {
                return Err(ModelError::ScoreOutOfRange { component, value });
            }
        }
        Ok(DreadScore {
            damage,
            reproducibility,
            exploitability,
            affected_users,
            discoverability,
        })
    }

    /// Damage potential (0–10).
    pub fn damage(self) -> u8 {
        self.damage
    }

    /// Reproducibility (0–10).
    pub fn reproducibility(self) -> u8 {
        self.reproducibility
    }

    /// Exploitability (0–10).
    pub fn exploitability(self) -> u8 {
        self.exploitability
    }

    /// Affected users (0–10).
    pub fn affected_users(self) -> u8 {
        self.affected_users
    }

    /// Discoverability (0–10).
    pub fn discoverability(self) -> u8 {
        self.discoverability
    }

    /// The components as an array in D,R,E,A,D order.
    pub fn components(self) -> [u8; 5] {
        [
            self.damage,
            self.reproducibility,
            self.exploitability,
            self.affected_users,
            self.discoverability,
        ]
    }

    /// The arithmetic mean of the five components — the parenthesised value
    /// in Table I.
    pub fn average(self) -> f64 {
        self.components().iter().map(|&v| v as f64).sum::<f64>() / 5.0
    }

    /// The average rounded to one decimal, as printed in the paper.
    pub fn average_1dp(self) -> f64 {
        (self.average() * 10.0).round() / 10.0
    }

    /// The qualitative rating band of the average.
    pub fn rating(self) -> RiskRating {
        RiskRating::from_average(self.average())
    }

    /// Likelihood proxy: mean of reproducibility, exploitability and
    /// discoverability (how easy the attack is to find and perform).
    pub fn likelihood_score(self) -> f64 {
        (self.reproducibility as f64 + self.exploitability as f64 + self.discoverability as f64)
            / 3.0
    }

    /// Impact proxy: mean of damage and affected users.
    pub fn impact_score(self) -> f64 {
        (self.damage as f64 + self.affected_users as f64) / 2.0
    }
}

impl PartialOrd for DreadScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DreadScore {
    /// Orders by average risk, tie-broken by damage then the full vector —
    /// a total order so threat lists sort deterministically.
    fn cmp(&self, other: &Self) -> Ordering {
        let a = self.components().iter().map(|&v| v as u16).sum::<u16>();
        let b = other.components().iter().map(|&v| v as u16).sum::<u16>();
        a.cmp(&b)
            .then_with(|| self.damage.cmp(&other.damage))
            .then_with(|| self.components().cmp(&other.components()))
    }
}

impl fmt::Display for DreadScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{},{},{},{},{} ({:.1})",
            self.damage,
            self.reproducibility,
            self.exploitability,
            self.affected_users,
            self.discoverability,
            self.average_1dp()
        )
    }
}

impl FromStr for DreadScore {
    type Err = ModelError;

    /// Parses `"8,5,4,6,4"` or the full Table I form `"8,5,4,6,4 (5.4)"`
    /// (the parenthesised average, when present, is recomputed and ignored).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let head = s.split('(').next().unwrap_or("").trim();
        let parts: Vec<&str> = head.split(',').map(str::trim).collect();
        if parts.len() != 5 {
            return Err(ModelError::ScoreOutOfRange { component: "vector length", value: parts.len() as u8 });
        }
        let mut vals = [0u8; 5];
        for (i, p) in parts.iter().enumerate() {
            vals[i] = p
                .parse::<u8>()
                .map_err(|_| ModelError::ScoreOutOfRange { component: "component", value: u8::MAX })?;
        }
        DreadScore::new(vals[0], vals[1], vals[2], vals[3], vals[4])
    }
}

/// Qualitative risk bands over the DREAD average.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RiskRating {
    /// Average below 3.
    Low,
    /// Average in `[3, 5)`.
    Medium,
    /// Average in `[5, 7)`.
    High,
    /// Average 7 or above.
    Critical,
}

impl RiskRating {
    /// Classifies an average into a band.
    pub fn from_average(avg: f64) -> Self {
        if avg >= 7.0 {
            RiskRating::Critical
        } else if avg >= 5.0 {
            RiskRating::High
        } else if avg >= 3.0 {
            RiskRating::Medium
        } else {
            RiskRating::Low
        }
    }
}

impl fmt::Display for RiskRating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RiskRating::Low => "low",
            RiskRating::Medium => "medium",
            RiskRating::High => "high",
            RiskRating::Critical => "critical",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every DREAD vector in Table I of the paper with its printed average.
    pub const PAPER_ROWS: [([u8; 5], f64); 14] = [
        ([8, 5, 4, 6, 4], 5.4),
        ([6, 3, 3, 6, 4], 4.4),
        ([5, 5, 5, 7, 6], 5.6),
        ([5, 5, 5, 6, 7], 5.6),
        ([6, 5, 4, 7, 5], 5.4),
        ([7, 5, 5, 9, 4], 6.0),
        ([7, 5, 5, 6, 5], 5.6),
        ([6, 6, 7, 8, 6], 6.6),
        ([7, 5, 6, 8, 6], 6.4),
        ([3, 5, 6, 4, 5], 4.6),
        ([8, 5, 3, 8, 5], 5.8),
        ([8, 6, 7, 8, 5], 6.8),
        ([7, 4, 5, 8, 4], 5.6),
        ([9, 4, 5, 9, 4], 6.2),
    ];

    #[test]
    fn paper_averages_reproduce_exactly() {
        for (v, expected) in PAPER_ROWS {
            let d = DreadScore::new(v[0], v[1], v[2], v[3], v[4]).unwrap();
            assert!(
                (d.average_1dp() - expected).abs() < 1e-9,
                "vector {v:?}: got {} expected {expected}",
                d.average_1dp()
            );
        }
    }

    #[test]
    fn component_validation() {
        assert!(DreadScore::new(10, 10, 10, 10, 10).is_ok());
        let err = DreadScore::new(11, 0, 0, 0, 0).unwrap_err();
        assert_eq!(err, ModelError::ScoreOutOfRange { component: "damage", value: 11 });
        let err = DreadScore::new(0, 0, 0, 0, 12).unwrap_err();
        assert_eq!(
            err,
            ModelError::ScoreOutOfRange { component: "discoverability", value: 12 }
        );
    }

    #[test]
    fn accessors_and_components() {
        let d = DreadScore::new(1, 2, 3, 4, 5).unwrap();
        assert_eq!(d.damage(), 1);
        assert_eq!(d.reproducibility(), 2);
        assert_eq!(d.exploitability(), 3);
        assert_eq!(d.affected_users(), 4);
        assert_eq!(d.discoverability(), 5);
        assert_eq!(d.components(), [1, 2, 3, 4, 5]);
        assert!((d.average() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_notation() {
        let d = DreadScore::new(8, 5, 4, 6, 4).unwrap();
        assert_eq!(d.to_string(), "8,5,4,6,4 (5.4)");
        let d2 = DreadScore::new(7, 5, 5, 9, 4).unwrap();
        assert_eq!(d2.to_string(), "7,5,5,9,4 (6.0)");
    }

    #[test]
    fn parse_round_trip() {
        for (v, _) in PAPER_ROWS {
            let d = DreadScore::new(v[0], v[1], v[2], v[3], v[4]).unwrap();
            let parsed: DreadScore = d.to_string().parse().unwrap();
            assert_eq!(parsed, d);
            // bare vector also parses
            let bare: DreadScore = format!("{},{},{},{},{}", v[0], v[1], v[2], v[3], v[4])
                .parse()
                .unwrap();
            assert_eq!(bare, d);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("1,2,3,4".parse::<DreadScore>().is_err());
        assert!("1,2,3,4,5,6".parse::<DreadScore>().is_err());
        assert!("a,b,c,d,e".parse::<DreadScore>().is_err());
        assert!("1,2,3,4,99".parse::<DreadScore>().is_err());
    }

    #[test]
    fn rating_bands() {
        assert_eq!(RiskRating::from_average(0.0), RiskRating::Low);
        assert_eq!(RiskRating::from_average(2.99), RiskRating::Low);
        assert_eq!(RiskRating::from_average(3.0), RiskRating::Medium);
        assert_eq!(RiskRating::from_average(4.99), RiskRating::Medium);
        assert_eq!(RiskRating::from_average(5.0), RiskRating::High);
        assert_eq!(RiskRating::from_average(6.99), RiskRating::High);
        assert_eq!(RiskRating::from_average(7.0), RiskRating::Critical);
        assert_eq!(RiskRating::from_average(10.0), RiskRating::Critical);
    }

    #[test]
    fn all_paper_threats_rate_medium_or_high() {
        // sanity check matching the paper: averages range 4.4–6.8
        for (v, _) in PAPER_ROWS {
            let d = DreadScore::new(v[0], v[1], v[2], v[3], v[4]).unwrap();
            assert!(matches!(d.rating(), RiskRating::Medium | RiskRating::High));
        }
    }

    #[test]
    fn ordering_by_total_risk() {
        let low = DreadScore::new(1, 1, 1, 1, 1).unwrap();
        let high = DreadScore::new(9, 9, 9, 9, 9).unwrap();
        assert!(low < high);
        let mut v = [high, low];
        v.sort();
        assert_eq!(v[0], low);
    }

    #[test]
    fn ordering_is_total_with_ties() {
        // same sum, different damage: higher damage sorts later
        let a = DreadScore::new(2, 8, 0, 0, 0).unwrap();
        let b = DreadScore::new(8, 2, 0, 0, 0).unwrap();
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn likelihood_and_impact_proxies() {
        let d = DreadScore::new(9, 3, 3, 9, 3).unwrap();
        assert!((d.likelihood_score() - 3.0).abs() < 1e-12);
        assert!((d.impact_score() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn rating_band_display() {
        assert_eq!(RiskRating::High.to_string(), "high");
        assert_eq!(RiskRating::Critical.to_string(), "critical");
    }
}
