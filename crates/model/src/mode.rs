//! Operating modes.
//!
//! The paper's case study defines three *car modes* (Normal, Remote
//! Diagnostic, Fail-safe) "under which the vehicle's core functionalities
//! will be adjusted". Modes are a first-class dimension of both threats
//! (which modes a threat applies in) and policies (mode-conditional rules),
//! so the model keeps them generic: any string-named mode works.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named operating mode of the system under analysis.
///
/// # Example
/// ```
/// use polsec_model::OperatingMode;
/// let normal = OperatingMode::new("normal");
/// assert_eq!(normal.name(), "normal");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OperatingMode(String);

impl OperatingMode {
    /// Creates a mode with the given name (trimmed, lower-cased for
    /// comparison stability).
    pub fn new(name: impl AsRef<str>) -> Self {
        OperatingMode(name.as_ref().trim().to_ascii_lowercase())
    }

    /// The normalised mode name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for OperatingMode {
    fn from(s: &str) -> Self {
        OperatingMode::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(OperatingMode::new("  Normal "), OperatingMode::new("normal"));
        assert_eq!(OperatingMode::new("FAIL-SAFE").name(), "fail-safe");
    }

    #[test]
    fn distinct_modes_differ() {
        assert_ne!(OperatingMode::new("normal"), OperatingMode::new("fail-safe"));
    }

    #[test]
    fn display_and_from() {
        let m: OperatingMode = "Remote Diagnostic".into();
        assert_eq!(m.to_string(), "remote diagnostic");
    }

    #[test]
    fn usable_in_sorted_collections() {
        let mut v = [OperatingMode::new("normal"),
            OperatingMode::new("fail-safe"),
            OperatingMode::new("remote diagnostic")];
        v.sort();
        assert_eq!(v[0].name(), "fail-safe");
    }
}
