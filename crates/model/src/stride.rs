//! STRIDE threat categorisation.
//!
//! STRIDE classifies threats by the security property they violate:
//! **S**poofing (authentication), **T**ampering (integrity),
//! **R**epudiation (non-repudiation), **I**nformation disclosure
//! (confidentiality), **D**enial of service (availability), and
//! **E**levation of privilege (authorisation). The paper's Table I records
//! each threat's categories as a compact letter string such as `"STD"` or
//! `"STIDE"`; [`StrideSet`] parses and prints exactly that notation.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One STRIDE category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StrideCategory {
    /// Illegitimately assuming another identity (violates authentication).
    Spoofing,
    /// Unauthorised modification of data or code (violates integrity).
    Tampering,
    /// Denying having performed an action (violates non-repudiation).
    Repudiation,
    /// Exposure of information (violates confidentiality).
    InformationDisclosure,
    /// Making a service unavailable (violates availability).
    DenialOfService,
    /// Gaining capabilities beyond those granted (violates authorisation).
    ElevationOfPrivilege,
}

impl StrideCategory {
    /// All six categories in canonical S,T,R,I,D,E order.
    pub const ALL: [StrideCategory; 6] = [
        StrideCategory::Spoofing,
        StrideCategory::Tampering,
        StrideCategory::Repudiation,
        StrideCategory::InformationDisclosure,
        StrideCategory::DenialOfService,
        StrideCategory::ElevationOfPrivilege,
    ];

    /// The category's single-letter code.
    pub fn letter(self) -> char {
        match self {
            StrideCategory::Spoofing => 'S',
            StrideCategory::Tampering => 'T',
            StrideCategory::Repudiation => 'R',
            StrideCategory::InformationDisclosure => 'I',
            StrideCategory::DenialOfService => 'D',
            StrideCategory::ElevationOfPrivilege => 'E',
        }
    }

    /// Parses a single letter code.
    ///
    /// # Errors
    /// [`ModelError::UnknownStrideLetter`] on anything outside `STRIDE`
    /// (case-insensitive).
    pub fn from_letter(c: char) -> Result<Self, ModelError> {
        match c.to_ascii_uppercase() {
            'S' => Ok(StrideCategory::Spoofing),
            'T' => Ok(StrideCategory::Tampering),
            'R' => Ok(StrideCategory::Repudiation),
            'I' => Ok(StrideCategory::InformationDisclosure),
            'D' => Ok(StrideCategory::DenialOfService),
            'E' => Ok(StrideCategory::ElevationOfPrivilege),
            other => Err(ModelError::UnknownStrideLetter { letter: other }),
        }
    }

    /// The security property this category violates.
    pub fn violated_property(self) -> &'static str {
        match self {
            StrideCategory::Spoofing => "authentication",
            StrideCategory::Tampering => "integrity",
            StrideCategory::Repudiation => "non-repudiation",
            StrideCategory::InformationDisclosure => "confidentiality",
            StrideCategory::DenialOfService => "availability",
            StrideCategory::ElevationOfPrivilege => "authorisation",
        }
    }
}

impl fmt::Display for StrideCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StrideCategory::Spoofing => "Spoofing",
            StrideCategory::Tampering => "Tampering",
            StrideCategory::Repudiation => "Repudiation",
            StrideCategory::InformationDisclosure => "Information disclosure",
            StrideCategory::DenialOfService => "Denial of service",
            StrideCategory::ElevationOfPrivilege => "Elevation of privilege",
        };
        f.write_str(name)
    }
}

/// A set of STRIDE categories, printed in canonical letter order.
///
/// # Example
/// ```
/// use polsec_model::{StrideCategory, StrideSet};
/// let s: StrideSet = "DTS".parse()?; // order-insensitive input
/// assert_eq!(s.to_string(), "STD"); // canonical output
/// assert_eq!(s.len(), 3);
/// assert!(s.contains(StrideCategory::DenialOfService));
/// # Ok::<(), polsec_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct StrideSet {
    bits: u8,
}

impl StrideSet {
    /// The empty set.
    pub const EMPTY: StrideSet = StrideSet { bits: 0 };

    /// A set containing every category.
    pub fn all() -> Self {
        StrideSet { bits: 0b11_1111 }
    }

    /// A set with a single category.
    pub fn only(c: StrideCategory) -> Self {
        StrideSet { bits: Self::bit(c) }
    }

    fn bit(c: StrideCategory) -> u8 {
        match c {
            StrideCategory::Spoofing => 1 << 0,
            StrideCategory::Tampering => 1 << 1,
            StrideCategory::Repudiation => 1 << 2,
            StrideCategory::InformationDisclosure => 1 << 3,
            StrideCategory::DenialOfService => 1 << 4,
            StrideCategory::ElevationOfPrivilege => 1 << 5,
        }
    }

    /// Adds a category (idempotent).
    pub fn insert(&mut self, c: StrideCategory) {
        self.bits |= Self::bit(c);
    }

    /// Removes a category.
    pub fn remove(&mut self, c: StrideCategory) {
        self.bits &= !Self::bit(c);
    }

    /// Whether the set contains `c`.
    pub fn contains(self, c: StrideCategory) -> bool {
        self.bits & Self::bit(c) != 0
    }

    /// Number of categories present.
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Set union.
    pub fn union(self, other: StrideSet) -> StrideSet {
        StrideSet { bits: self.bits | other.bits }
    }

    /// Set intersection.
    pub fn intersection(self, other: StrideSet) -> StrideSet {
        StrideSet { bits: self.bits & other.bits }
    }

    /// Iterates categories in canonical order.
    pub fn iter(self) -> impl Iterator<Item = StrideCategory> {
        StrideCategory::ALL.into_iter().filter(move |c| self.contains(*c))
    }

    /// Whether the set indicates an availability threat (contains D).
    pub fn threatens_availability(self) -> bool {
        self.contains(StrideCategory::DenialOfService)
    }

    /// Whether the set indicates an integrity or authenticity threat
    /// (contains S or T).
    pub fn threatens_integrity(self) -> bool {
        self.contains(StrideCategory::Spoofing) || self.contains(StrideCategory::Tampering)
    }
}

impl FromStr for StrideSet {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Err(ModelError::EmptyStride);
        }
        let mut set = StrideSet::EMPTY;
        for c in trimmed.chars() {
            set.insert(StrideCategory::from_letter(c)?);
        }
        Ok(set)
    }
}

impl fmt::Display for StrideSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("-");
        }
        for c in self.iter() {
            write!(f, "{}", c.letter())?;
        }
        Ok(())
    }
}

impl FromIterator<StrideCategory> for StrideSet {
    fn from_iter<T: IntoIterator<Item = StrideCategory>>(iter: T) -> Self {
        let mut s = StrideSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_strings() {
        // every STRIDE string appearing in Table I of the paper
        for (input, expected_len) in [
            ("STD", 3),
            ("SD", 2),
            ("STE", 3),
            ("STIDE", 5),
            ("TIE", 3),
            ("TDE", 3),
            ("STR", 3),
            ("TE", 2),
        ] {
            let s: StrideSet = input.parse().unwrap_or_else(|e| panic!("{input}: {e}"));
            assert_eq!(s.len(), expected_len, "{input}");
            assert_eq!(s.to_string(), input, "canonical order for {input}");
        }
    }

    #[test]
    fn rejects_unknown_letters_and_empty() {
        assert_eq!(
            "SX".parse::<StrideSet>().unwrap_err(),
            ModelError::UnknownStrideLetter { letter: 'X' }
        );
        assert_eq!("".parse::<StrideSet>().unwrap_err(), ModelError::EmptyStride);
        assert_eq!("  ".parse::<StrideSet>().unwrap_err(), ModelError::EmptyStride);
    }

    #[test]
    fn parse_is_case_insensitive_and_idempotent() {
        let a: StrideSet = "std".parse().unwrap();
        let b: StrideSet = "STD".parse().unwrap();
        let c: StrideSet = "SSTTDD".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = StrideSet::EMPTY;
        assert!(s.is_empty());
        s.insert(StrideCategory::Tampering);
        assert!(s.contains(StrideCategory::Tampering));
        assert!(!s.contains(StrideCategory::Spoofing));
        s.remove(StrideCategory::Tampering);
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let a: StrideSet = "ST".parse().unwrap();
        let b: StrideSet = "TD".parse().unwrap();
        assert_eq!(a.union(b).to_string(), "STD");
        assert_eq!(a.intersection(b).to_string(), "T");
    }

    #[test]
    fn all_has_six() {
        assert_eq!(StrideSet::all().len(), 6);
        assert_eq!(StrideSet::all().to_string(), "STRIDE");
    }

    #[test]
    fn empty_displays_dash() {
        assert_eq!(StrideSet::EMPTY.to_string(), "-");
    }

    #[test]
    fn semantic_queries() {
        let s: StrideSet = "STD".parse().unwrap();
        assert!(s.threatens_availability());
        assert!(s.threatens_integrity());
        let t: StrideSet = "IE".parse().unwrap();
        assert!(!t.threatens_availability());
        assert!(!t.threatens_integrity());
    }

    #[test]
    fn category_letters_round_trip() {
        for c in StrideCategory::ALL {
            assert_eq!(StrideCategory::from_letter(c.letter()).unwrap(), c);
        }
    }

    #[test]
    fn properties_are_distinct() {
        let mut props: Vec<&str> = StrideCategory::ALL
            .iter()
            .map(|c| c.violated_property())
            .collect();
        props.sort_unstable();
        props.dedup();
        assert_eq!(props.len(), 6);
    }

    #[test]
    fn from_iterator() {
        let s: StrideSet = [StrideCategory::Spoofing, StrideCategory::ElevationOfPrivilege]
            .into_iter()
            .collect();
        assert_eq!(s.to_string(), "SE");
    }

    #[test]
    fn display_names() {
        assert_eq!(StrideCategory::InformationDisclosure.to_string(), "Information disclosure");
        assert_eq!(StrideCategory::Spoofing.to_string(), "Spoofing");
    }
}
