//! Risk assessment: likelihood/impact classification.
//!
//! The "Threat Rating" stage of the Fig. 1 pipeline prioritises threats "based
//! on their likelihood, risk and potential damage". This module projects the
//! five-dimensional DREAD vector onto a classic likelihood×impact risk matrix
//! so design effort can be prioritised (the same move Akatyev et al. make,
//! which the paper cites approvingly).

use crate::dread::DreadScore;
use crate::threat::Threat;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Qualitative likelihood derived from DREAD's reproducibility,
/// exploitability and discoverability components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Likelihood {
    /// Mean of the three likelihood components below 3.
    Rare,
    /// Mean in `[3, 5)`.
    Possible,
    /// Mean in `[5, 7)`.
    Likely,
    /// Mean 7 or above.
    AlmostCertain,
}

impl Likelihood {
    /// Classifies a DREAD score's likelihood proxy.
    pub fn from_dread(d: DreadScore) -> Self {
        let l = d.likelihood_score();
        if l >= 7.0 {
            Likelihood::AlmostCertain
        } else if l >= 5.0 {
            Likelihood::Likely
        } else if l >= 3.0 {
            Likelihood::Possible
        } else {
            Likelihood::Rare
        }
    }
}

impl fmt::Display for Likelihood {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Likelihood::Rare => "rare",
            Likelihood::Possible => "possible",
            Likelihood::Likely => "likely",
            Likelihood::AlmostCertain => "almost-certain",
        };
        f.write_str(s)
    }
}

/// Position in the 2×2 risk matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RiskQuadrant {
    /// Low likelihood, low impact — accept / best practices.
    Monitor,
    /// High likelihood, low impact — cheap mitigations.
    Mitigate,
    /// Low likelihood, high impact — contingency / fail-safe design.
    Contingency,
    /// High likelihood, high impact — top design priority.
    Priority,
}

impl fmt::Display for RiskQuadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RiskQuadrant::Monitor => "monitor",
            RiskQuadrant::Mitigate => "mitigate",
            RiskQuadrant::Contingency => "contingency",
            RiskQuadrant::Priority => "priority",
        };
        f.write_str(s)
    }
}

/// A likelihood×impact classifier with configurable thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskMatrix {
    /// Likelihood proxy at or above this value counts as "high likelihood".
    pub likelihood_threshold: f64,
    /// Impact proxy at or above this value counts as "high impact".
    pub impact_threshold: f64,
}

impl Default for RiskMatrix {
    fn default() -> Self {
        RiskMatrix {
            likelihood_threshold: 5.0,
            impact_threshold: 5.0,
        }
    }
}

impl RiskMatrix {
    /// Creates a matrix with default thresholds (5.0 / 5.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a DREAD score into a quadrant.
    pub fn classify(&self, d: DreadScore) -> RiskQuadrant {
        let high_likelihood = d.likelihood_score() >= self.likelihood_threshold;
        let high_impact = d.impact_score() >= self.impact_threshold;
        match (high_likelihood, high_impact) {
            (false, false) => RiskQuadrant::Monitor,
            (true, false) => RiskQuadrant::Mitigate,
            (false, true) => RiskQuadrant::Contingency,
            (true, true) => RiskQuadrant::Priority,
        }
    }

    /// Partitions threats into the four quadrants, preserving input order.
    pub fn partition<'a>(&self, threats: &'a [Threat]) -> [(RiskQuadrant, Vec<&'a Threat>); 4] {
        let mut out = [
            (RiskQuadrant::Priority, Vec::new()),
            (RiskQuadrant::Contingency, Vec::new()),
            (RiskQuadrant::Mitigate, Vec::new()),
            (RiskQuadrant::Monitor, Vec::new()),
        ];
        for t in threats {
            let q = self.classify(t.dread());
            for (quadrant, bucket) in &mut out {
                if *quadrant == q {
                    bucket.push(t);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: [u8; 5]) -> DreadScore {
        DreadScore::new(v[0], v[1], v[2], v[3], v[4]).unwrap()
    }

    #[test]
    fn likelihood_bands() {
        assert_eq!(Likelihood::from_dread(d([0, 1, 1, 0, 1])), Likelihood::Rare);
        assert_eq!(Likelihood::from_dread(d([0, 4, 4, 0, 4])), Likelihood::Possible);
        assert_eq!(Likelihood::from_dread(d([0, 6, 6, 0, 6])), Likelihood::Likely);
        assert_eq!(
            Likelihood::from_dread(d([0, 8, 8, 0, 8])),
            Likelihood::AlmostCertain
        );
    }

    #[test]
    fn quadrants_cover_all_combinations() {
        let m = RiskMatrix::new();
        // low/low
        assert_eq!(m.classify(d([1, 1, 1, 1, 1])), RiskQuadrant::Monitor);
        // high likelihood, low impact
        assert_eq!(m.classify(d([1, 9, 9, 1, 9])), RiskQuadrant::Mitigate);
        // low likelihood, high impact
        assert_eq!(m.classify(d([9, 1, 1, 9, 1])), RiskQuadrant::Contingency);
        // high/high
        assert_eq!(m.classify(d([9, 9, 9, 9, 9])), RiskQuadrant::Priority);
    }

    #[test]
    fn thresholds_are_configurable() {
        let strict = RiskMatrix {
            likelihood_threshold: 9.0,
            impact_threshold: 9.0,
        };
        assert_eq!(strict.classify(d([8, 8, 8, 8, 8])), RiskQuadrant::Monitor);
    }

    #[test]
    fn partition_buckets_threats() {
        use crate::countermeasure::PermissionHint;
        use crate::threat::Threat;
        let mk = |id: &str, v: [u8; 5]| {
            Threat::builder(id, "x")
                .asset("a")
                .entry_point("e")
                .dread(d(v))
                .policy(PermissionHint::Read)
                .build()
        };
        let threats = vec![
            mk("prio", [9, 9, 9, 9, 9]),
            mk("mon", [1, 1, 1, 1, 1]),
            mk("prio2", [8, 8, 8, 8, 8]),
        ];
        let parts = RiskMatrix::new().partition(&threats);
        let prio = parts.iter().find(|(q, _)| *q == RiskQuadrant::Priority).unwrap();
        assert_eq!(prio.1.len(), 2);
        assert_eq!(prio.1[0].id().as_str(), "prio", "input order preserved");
        let mon = parts.iter().find(|(q, _)| *q == RiskQuadrant::Monitor).unwrap();
        assert_eq!(mon.1.len(), 1);
    }

    #[test]
    fn displays() {
        assert_eq!(Likelihood::AlmostCertain.to_string(), "almost-certain");
        assert_eq!(RiskQuadrant::Priority.to_string(), "priority");
    }
}
