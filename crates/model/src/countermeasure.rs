//! Countermeasures: guidelines vs policies, and what each costs to deploy.
//!
//! This module encodes the paper's central contrast (§V.A.1 vs §V.A.2):
//!
//! * a **guideline** countermeasure is prose for developers — changing it
//!   after deployment means redevelopment, possibly a product recall;
//! * a **policy** countermeasure is machine-enforceable — changing it after
//!   deployment is a signed policy update.
//!
//! [`RemediationCost`] is the cost model behind the `update_vs_redesign`
//! experiment (E3): staged engineering effort plus recall/recertification
//! flags.

use crate::asset::AssetId;
use crate::entry_point::EntryPointId;
use crate::mode::OperatingMode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The access the derived policy permits at an entry point — the "Policy"
/// column of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PermissionHint {
    /// `R` — reads of the asset are permitted; writes are denied.
    Read,
    /// `W` — writes are permitted; reads are denied.
    Write,
    /// `RW` — both permitted (the threat is mitigated by other conditions).
    ReadWrite,
}

impl PermissionHint {
    /// Parses the paper's column notation (`R`, `W`, `RW`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R" => Some(PermissionHint::Read),
            "W" => Some(PermissionHint::Write),
            "RW" | "WR" => Some(PermissionHint::ReadWrite),
            _ => None,
        }
    }

    /// Whether reading is permitted.
    pub fn allows_read(self) -> bool {
        matches!(self, PermissionHint::Read | PermissionHint::ReadWrite)
    }

    /// Whether writing is permitted.
    pub fn allows_write(self) -> bool {
        matches!(self, PermissionHint::Write | PermissionHint::ReadWrite)
    }
}

impl fmt::Display for PermissionHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PermissionHint::Read => "R",
            PermissionHint::Write => "W",
            PermissionHint::ReadWrite => "RW",
        };
        f.write_str(s)
    }
}

/// A machine-readable policy specification derived from a threat — the
/// bridge between the threat model and `polsec-core`'s compiler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicySpec {
    /// The asset the policy protects.
    pub asset: AssetId,
    /// The entry points the policy constrains.
    pub entry_points: Vec<EntryPointId>,
    /// What access remains permitted.
    pub permission: PermissionHint,
    /// Modes in which the policy applies (empty = all modes).
    pub modes: Vec<OperatingMode>,
    /// Free-text rationale tying the policy back to its threat.
    pub rationale: String,
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let eps: Vec<&str> = self.entry_points.iter().map(|e| e.as_str()).collect();
        write!(
            f,
            "permit {} on {} from [{}]",
            self.permission,
            self.asset,
            eps.join(", ")
        )?;
        if !self.modes.is_empty() {
            let ms: Vec<&str> = self.modes.iter().map(|m| m.name()).collect();
            write!(f, " in modes [{}]", ms.join(", "))?;
        }
        Ok(())
    }
}

/// A countermeasure against a threat.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Countermeasure {
    /// A design-time guideline (the traditional approach of §V.A.1).
    Guideline {
        /// The guidance text given to developers.
        text: String,
    },
    /// A run-time enforceable policy (the paper's approach, §V.A.2).
    Policy {
        /// The derived policy specification.
        spec: PolicySpec,
    },
}

impl Countermeasure {
    /// Whether the countermeasure can be deployed after production without
    /// redesign.
    pub fn is_field_updatable(&self) -> bool {
        matches!(self, Countermeasure::Policy { .. })
    }

    /// The remediation cost of deploying this countermeasure *after* the
    /// product has shipped.
    pub fn post_deployment_cost(&self) -> RemediationCost {
        match self {
            Countermeasure::Guideline { .. } => RemediationCost::redesign(),
            Countermeasure::Policy { .. } => RemediationCost::policy_update(),
        }
    }
}

impl fmt::Display for Countermeasure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Countermeasure::Guideline { text } => write!(f, "guideline: {text}"),
            Countermeasure::Policy { spec } => write!(f, "policy: {spec}"),
        }
    }
}

/// Staged cost of deploying a fix, in engineering-days per stage.
///
/// The stages mirror the two swim lanes of Fig. 1: threat analysis feeds a
/// design/implementation phase, then testing/verification, then deployment.
/// Values are deliberately round planning numbers — what matters for the E3
/// experiment is the *ratio* between the two paths, which the paper claims
/// is large ("significantly faster and easier … than a software redesign or
/// product recall").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemediationCost {
    /// Re-running threat/security modelling.
    pub analysis_days: u32,
    /// Design + implementation.
    pub implementation_days: u32,
    /// Testing and verification.
    pub verification_days: u32,
    /// Rollout (OTA campaign or recall logistics).
    pub deployment_days: u32,
    /// Whether units must physically return (product recall).
    pub requires_recall: bool,
    /// Whether regulatory recertification is triggered.
    pub requires_recertification: bool,
}

impl RemediationCost {
    /// Cost profile of a hardware/software redesign (guideline path).
    pub fn redesign() -> Self {
        RemediationCost {
            analysis_days: 10,
            implementation_days: 60,
            verification_days: 30,
            deployment_days: 45,
            requires_recall: true,
            requires_recertification: true,
        }
    }

    /// Cost profile of a signed policy update (policy path).
    pub fn policy_update() -> Self {
        RemediationCost {
            analysis_days: 2,
            implementation_days: 1,
            verification_days: 3,
            deployment_days: 1,
            requires_recall: false,
            requires_recertification: false,
        }
    }

    /// Total calendar effort in days.
    pub fn total_days(&self) -> u32 {
        self.analysis_days + self.implementation_days + self.verification_days + self.deployment_days
    }
}

impl fmt::Display for RemediationCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} days (analysis {}, impl {}, verify {}, deploy {}){}{}",
            self.total_days(),
            self.analysis_days,
            self.implementation_days,
            self.verification_days,
            self.deployment_days,
            if self.requires_recall { ", recall" } else { "" },
            if self.requires_recertification { ", recert" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PolicySpec {
        PolicySpec {
            asset: AssetId::new("ev-ecu"),
            entry_points: vec![EntryPointId::new("sensors")],
            permission: PermissionHint::Read,
            modes: vec![OperatingMode::new("normal")],
            rationale: "spoofed CAN data".into(),
        }
    }

    #[test]
    fn permission_hint_parse() {
        assert_eq!(PermissionHint::parse("R"), Some(PermissionHint::Read));
        assert_eq!(PermissionHint::parse("w"), Some(PermissionHint::Write));
        assert_eq!(PermissionHint::parse("RW"), Some(PermissionHint::ReadWrite));
        assert_eq!(PermissionHint::parse(" rw "), Some(PermissionHint::ReadWrite));
        assert_eq!(PermissionHint::parse("X"), None);
    }

    #[test]
    fn permission_semantics() {
        assert!(PermissionHint::Read.allows_read());
        assert!(!PermissionHint::Read.allows_write());
        assert!(PermissionHint::Write.allows_write());
        assert!(!PermissionHint::Write.allows_read());
        assert!(PermissionHint::ReadWrite.allows_read());
        assert!(PermissionHint::ReadWrite.allows_write());
    }

    #[test]
    fn policy_is_field_updatable_guideline_is_not() {
        let g = Countermeasure::Guideline { text: "patch often".into() };
        let p = Countermeasure::Policy { spec: spec() };
        assert!(!g.is_field_updatable());
        assert!(p.is_field_updatable());
    }

    #[test]
    fn cost_ratio_strongly_favours_policy() {
        let redesign = RemediationCost::redesign();
        let update = RemediationCost::policy_update();
        assert!(redesign.total_days() > 10 * update.total_days());
        assert!(redesign.requires_recall);
        assert!(!update.requires_recall);
        assert!(redesign.requires_recertification);
        assert!(!update.requires_recertification);
    }

    #[test]
    fn post_deployment_cost_maps_by_kind() {
        let g = Countermeasure::Guideline { text: "x".into() };
        let p = Countermeasure::Policy { spec: spec() };
        assert_eq!(g.post_deployment_cost(), RemediationCost::redesign());
        assert_eq!(p.post_deployment_cost(), RemediationCost::policy_update());
    }

    #[test]
    fn displays() {
        let s = spec();
        let text = s.to_string();
        assert!(text.contains("permit R on ev-ecu"));
        assert!(text.contains("in modes [normal]"));
        let c = Countermeasure::Policy { spec: s };
        assert!(c.to_string().starts_with("policy: "));
        assert!(RemediationCost::redesign().to_string().contains("recall"));
        assert_eq!(PermissionHint::ReadWrite.to_string(), "RW");
    }

    #[test]
    fn total_days_adds_stages() {
        let c = RemediationCost {
            analysis_days: 1,
            implementation_days: 2,
            verification_days: 3,
            deployment_days: 4,
            requires_recall: false,
            requires_recertification: false,
        };
        assert_eq!(c.total_days(), 10);
    }
}
