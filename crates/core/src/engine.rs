//! The policy evaluation engine.
//!
//! [`PolicyEngine`] evaluates [`AccessRequest`]s against a [`PolicySet`]
//! under a configurable [`CombiningStrategy`]:
//!
//! * **deny-overrides** (default): any applying deny rule denies; otherwise
//!   any applying allow rule allows; otherwise the set's default effect.
//!   This is the least-privilege composition the paper's approach implies.
//! * **first-match**: rules are consulted in declaration order; the first
//!   applying rule wins (firewall-style).
//! * **priority-order**: the applying rule with the highest priority wins;
//!   priority ties resolve to deny.
//!
//! # The decision fast path (DESIGN.md §6)
//!
//! `decide` takes `&self`, and on a cache hit performs **zero heap
//! allocations and takes zero contended locks**:
//!
//! * entity names, rule ids and modes are interned [`Symbol`]s, so the
//!   subject index is keyed by two `u32`s and no per-request strings exist;
//! * statistics are plain atomic counters;
//! * rate windows are per-key atomic bucket rings, consulted only when a
//!   candidate rule actually references [`crate::Condition::RateAtMost`]
//!   (a rate-dependency map computed at load time);
//! * the audit trail is a set of sharded, pre-allocated rings picked by
//!   thread, merged only when read;
//! * decisions themselves are cached in a generation-tagged
//!   [`crate::cache::GenCache`] keyed by
//!   `(subject, object, action, mode)`; [`PolicyEngine::reload`] bumps the
//!   generation so stale entries can never answer. Rules whose conditions
//!   read state or rates are excluded from caching by construction.
//!
//! [`Decision`]s are `Copy` and build their human-readable reason string
//! lazily, on demand.

use crate::audit::{AuditLog, AuditRecord};
use crate::bundle::SignedBundle;
use crate::cache::{GenCache, KEY_VALID};
use crate::condition::RateSource;
use crate::error::PolicyError;
use crate::intern::Symbol;
use crate::policy::{Effect, PolicySet, Rule};
use crate::request::{AccessRequest, EvalContext};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

/// How applying rules combine into one decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CombiningStrategy {
    /// Deny if any applying rule denies (least privilege). The default.
    #[default]
    DenyOverrides,
    /// First applying rule in declaration order wins.
    FirstMatch,
    /// Highest-priority applying rule wins; ties resolve to deny.
    PriorityOrder,
}

impl fmt::Display for CombiningStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CombiningStrategy::DenyOverrides => "deny-overrides",
            CombiningStrategy::FirstMatch => "first-match",
            CombiningStrategy::PriorityOrder => "priority-order",
        };
        f.write_str(s)
    }
}

/// Why a decision came out the way it did (reason text is derived lazily).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ReasonKind {
    Default,
    FirstMatch,
    DenyOverrides,
    AllowNoDeny,
    Priority(i32),
}

/// The engine's answer for one request.
///
/// Decisions are `Copy`: the determining rule is referenced by its interned
/// `policy.rule` name and the explanation string is built on demand by
/// [`Decision::reason`], not allocated per decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    effect: Effect,
    rule: Option<RuleTag>,
    kind: ReasonKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RuleTag {
    qualified: &'static str,
    id: &'static str,
}

impl Decision {
    /// The decided effect.
    pub fn effect(&self) -> Effect {
        self.effect
    }

    /// Whether access was allowed.
    pub fn is_allow(&self) -> bool {
        self.effect == Effect::Allow
    }

    /// The determining rule as `policy.rule`, or `None` for a default
    /// decision.
    pub fn rule(&self) -> Option<&'static str> {
        self.rule.map(|t| t.qualified)
    }

    /// Human-readable explanation, built on demand.
    pub fn reason(&self) -> String {
        match (self.kind, self.rule) {
            (ReasonKind::Default, _) => {
                format!("no rule applies; default {}", self.effect)
            }
            (ReasonKind::FirstMatch, Some(t)) => format!("first matching rule {}", t.id),
            (ReasonKind::DenyOverrides, Some(t)) => {
                format!("deny-overrides: rule {} denies", t.id)
            }
            (ReasonKind::AllowNoDeny, Some(t)) => {
                format!("allowed by rule {}, no deny applies", t.id)
            }
            (ReasonKind::Priority(p), Some(t)) => format!("priority {p} rule {}", t.qualified),
            // A rule-kind without a tag cannot be constructed by the engine.
            (_, None) => format!("{}", self.effect),
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.effect, self.reason())
    }
}

/// Window length for rate conditions, in microseconds.
const RATE_WINDOW_US: u64 = 1_000_000;
/// Ring granularity: 16 buckets of 62.5 ms cover the 1-second window.
const RATE_BUCKETS: usize = 16;
const RATE_BUCKET_US: u64 = RATE_WINDOW_US / RATE_BUCKETS as u64;

/// A lock-free sliding-window counter: a ring of `(epoch, count)` pairs
/// packed into `AtomicU64`s. `observe` and `count` are wait-free apart
/// from a CAS retry under contention on the same bucket.
#[derive(Debug, Default)]
struct AtomicWindow {
    buckets: [AtomicU64; RATE_BUCKETS],
}

impl AtomicWindow {
    fn observe(&self, now_us: u64) {
        let epoch = (now_us / RATE_BUCKET_US) as u32;
        let slot = &self.buckets[epoch as usize % RATE_BUCKETS];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let next = if (cur >> 32) as u32 == epoch {
                cur + 1 // same epoch: bump the count half
            } else {
                (u64::from(epoch) << 32) | 1 // stale bucket: restart it
            };
            match slot.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn count(&self, now_us: u64) -> u64 {
        let epoch = (now_us / RATE_BUCKET_US) as u32;
        let oldest = epoch.saturating_sub(RATE_BUCKETS as u32 - 1);
        self.buckets
            .iter()
            .map(|b| {
                let v = b.load(Ordering::Acquire);
                let e = (v >> 32) as u32;
                if (oldest..=epoch).contains(&e) {
                    v & 0xFFFF_FFFF
                } else {
                    0
                }
            })
            .sum()
    }

    fn snapshot_into(&self, other: &AtomicWindow) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            b.store(a.load(Ordering::Acquire), Ordering::Release);
        }
    }
}

/// Bound on dynamically-tracked (undeclared) rate keys.
const MAX_DYNAMIC_RATE_KEYS: usize = 1_024;

/// Exact timestamp tracking for keys the loaded policies do *not* declare.
/// These never influence decisions directly (only declared keys do) but are
/// retained — bounded and pruned — so observations made shortly before a
/// policy reload that declares the key are not lost. Keys are owned
/// strings, **not** interned: interning leaks one allocation per distinct
/// string for the process lifetime, which would defeat the bound for
/// callers feeding per-session keys.
#[derive(Debug, Default)]
struct DynamicRates {
    windows: HashMap<String, VecDeque<u64>>,
}

impl DynamicRates {
    fn observe(&mut self, key: &str, now_us: u64) {
        if let Some(w) = self.windows.get_mut(key) {
            w.push_back(now_us);
            Self::prune(w, now_us);
            return;
        }
        if self.windows.len() >= MAX_DYNAMIC_RATE_KEYS {
            self.sweep(now_us);
            if self.windows.len() >= MAX_DYNAMIC_RATE_KEYS {
                // Still full of live keys: evict the one idle the longest.
                if let Some(stalest) = self
                    .windows
                    .iter()
                    .min_by_key(|(_, w)| w.back().copied().unwrap_or(0))
                    .map(|(k, _)| k.clone())
                {
                    self.windows.remove(&stalest);
                }
            }
        }
        self.windows
            .insert(key.to_string(), VecDeque::from([now_us]));
    }

    /// Prunes every window and drops the empty ones.
    fn sweep(&mut self, now_us: u64) {
        self.windows.retain(|_, w| {
            Self::prune(w, now_us);
            !w.is_empty()
        });
    }

    fn prune(w: &mut VecDeque<u64>, now_us: u64) {
        let cutoff = now_us.saturating_sub(RATE_WINDOW_US);
        while w.front().is_some_and(|&t| t < cutoff) {
            w.pop_front();
        }
    }

    fn take(&mut self, key: &str) -> Option<VecDeque<u64>> {
        self.windows.remove(key)
    }

    fn len(&self) -> usize {
        self.windows.len()
    }
}

/// Declared-key atomic windows plus the bounded dynamic overflow, and a
/// lazily-populated per-*scope* replica of the declared windows (one scope
/// per tenant of a shared engine — e.g. per vehicle in a fleet run), so
/// scoped rate observations never couple through a global window.
#[derive(Debug, Default)]
struct RateTable {
    declared: HashMap<Symbol, usize>,
    windows: Vec<AtomicWindow>,
    /// Scope id → one window per declared key. Read-locked on the hot
    /// path; write-locked only the first time a scope is touched.
    scoped: RwLock<HashMap<u64, Vec<AtomicWindow>>>,
    dynamic: Mutex<DynamicRates>,
}

impl RateTable {
    fn observe(&self, key: &str, now_us: u64) {
        // try_get, never intern: undeclared keys must not leak interner
        // entries (declared keys were interned once at rebuild).
        if let Some(&i) = Symbol::try_get(key).and_then(|s| self.declared.get(&s)) {
            self.windows[i].observe(now_us);
        } else {
            lock(&self.dynamic).observe(key, now_us);
        }
    }

    fn observe_scoped(&self, scope: u64, key: &str, now_us: u64) {
        if let Some(&i) = Symbol::try_get(key).and_then(|s| self.declared.get(&s)) {
            {
                let scopes = read(&self.scoped);
                if let Some(windows) = scopes.get(&scope) {
                    windows[i].observe(now_us);
                    return;
                }
            }
            let mut scopes = write(&self.scoped);
            let windows = scopes
                .entry(scope)
                .or_insert_with(|| (0..self.windows.len()).map(|_| AtomicWindow::default()).collect());
            windows[i].observe(now_us);
        }
        // Undeclared scoped keys are dropped: no decision path reads them
        // (the overlay falls back to the *context's* rates, never to the
        // dynamic table, for scoped lookups), and parking them in the
        // bounded dynamic table could only evict unscoped keys whose
        // pre-declaration history is actually replayed on reload.
    }

    fn declared_rate(&self, key: &str, now_us: u64) -> Option<f64> {
        let sym = Symbol::try_get(key)?;
        let &i = self.declared.get(&sym)?;
        Some(self.windows[i].count(now_us) as f64)
    }

    /// Like [`RateTable::declared_rate`] but reading the scope's windows.
    /// A declared key with an untouched scope reads as rate 0 (the scope
    /// simply has not observed any events yet).
    fn declared_rate_scoped(&self, scope: u64, key: &str, now_us: u64) -> Option<f64> {
        let sym = Symbol::try_get(key)?;
        let &i = self.declared.get(&sym)?;
        let scopes = read(&self.scoped);
        Some(
            scopes
                .get(&scope)
                .map(|windows| windows[i].count(now_us) as f64)
                .unwrap_or(0.0),
        )
    }

    /// Rebuilds the declared set, carrying over windows for keys that stay
    /// declared and replaying recent dynamic observations for keys that
    /// become declared. Scoped windows are indexed by declared-key slot,
    /// so they are reset wholesale (a reload starts every scope's windows
    /// empty — documented on `observe_rate_event_scoped`).
    fn rebuild(&mut self, keys: impl Iterator<Item = Symbol>) {
        let old_declared = std::mem::take(&mut self.declared);
        let old_windows = std::mem::take(&mut self.windows);
        write(&self.scoped).clear();
        let mut dynamic = lock(&self.dynamic);
        for sym in keys {
            let idx = self.windows.len();
            let window = AtomicWindow::default();
            if let Some(&old) = old_declared.get(&sym) {
                old_windows[old].snapshot_into(&window);
            } else if let Some(times) = dynamic.take(sym.as_str()) {
                for t in times {
                    window.observe(t);
                }
            }
            self.windows.push(window);
            self.declared.insert(sym, idx);
        }
    }

    fn dynamic_key_count(&self) -> usize {
        lock(&self.dynamic).len()
    }
}

/// The engine's live rates layered over the caller's context rates.
struct RateOverlay<'a> {
    table: &'a RateTable,
    ctx: &'a EvalContext,
    now_us: u64,
}

impl RateSource for RateOverlay<'_> {
    fn rate_per_sec(&self, key: &str) -> f64 {
        let declared = match self.ctx.rate_scope() {
            Some(scope) => self.table.declared_rate_scoped(scope, key, self.now_us),
            None => self.table.declared_rate(key, self.now_us),
        };
        declared.unwrap_or_else(|| self.ctx.rate_per_sec(key))
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Evaluation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total decisions taken.
    pub decisions: u64,
    /// Of which allows.
    pub allows: u64,
    /// Of which denies.
    pub denies: u64,
    /// Decisions that fell through to the default effect.
    pub defaults: u64,
    /// Rules examined across all decisions (index effectiveness metric).
    pub rules_examined: u64,
    /// Decisions answered from the decision cache.
    pub cache_hits: u64,
    /// Cacheable decisions that had to evaluate rules.
    pub cache_misses: u64,
}

impl EngineStats {
    /// The counters as `(name, value)` pairs, for uniform export into
    /// metric sets and reports.
    pub fn as_pairs(&self) -> [(&'static str, u64); 7] {
        [
            ("decisions", self.decisions),
            ("allows", self.allows),
            ("denies", self.denies),
            ("defaults", self.defaults),
            ("rules_examined", self.rules_examined),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
        ]
    }
}

#[derive(Debug, Default)]
struct EngineCounters {
    decisions: AtomicU64,
    allows: AtomicU64,
    denies: AtomicU64,
    defaults: AtomicU64,
    rules_examined: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// Number of audit shards (power of two). With at least as many shards as
/// deciding threads, audit appends effectively never contend.
const AUDIT_SHARDS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct CompactAudit {
    seq: u64,
    time_us: u64,
    request: AccessRequest,
    effect: Effect,
    rule: Option<&'static str>,
}

/// Sharded, pre-allocated audit rings: `decide` never blocks `decide` on
/// the audit trail, and appends never allocate.
struct AuditSink {
    shards: Box<[Mutex<VecDeque<CompactAudit>>]>,
    per_shard: usize,
    capacity: usize,
    seq: AtomicU64,
}

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SHARD.with(|s| *s)
}

impl AuditSink {
    fn new(capacity: usize) -> Self {
        // Each shard retains the full capacity: a single-threaded engine
        // writes one shard only and must still keep `capacity` records
        // (the merged snapshot truncates to the newest `capacity`).
        let per_shard = capacity.max(1);
        AuditSink {
            shards: (0..AUDIT_SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_shard)))
                .collect(),
            per_shard,
            capacity,
            seq: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, time_us: u64, request: AccessRequest, effect: Effect, rule: Option<&'static str>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock(&self.shards[shard_index() % AUDIT_SHARDS]);
        if shard.len() >= self.per_shard {
            shard.pop_front();
        }
        shard.push_back(CompactAudit { seq, time_us, request, effect, rule });
    }

    fn snapshot(&self, counters: &EngineCounters) -> AuditLog {
        let mut all: Vec<CompactAudit> = Vec::new();
        for shard in self.shards.iter() {
            all.extend(lock(shard).iter().copied());
        }
        all.sort_unstable_by_key(|r| r.seq);
        if all.len() > self.capacity {
            let cut = all.len() - self.capacity;
            all.drain(..cut);
        }
        let mut log = AuditLog::with_capacity(self.capacity);
        for r in all {
            log.push_materialised(AuditRecord {
                seq: r.seq,
                time_us: r.time_us,
                request: r.request,
                effect: r.effect,
                rule: r.rule.map(str::to_string),
            });
        }
        log.set_aggregates(
            self.seq.load(Ordering::Relaxed),
            counters.allows.load(Ordering::Relaxed),
            counters.denies.load(Ordering::Relaxed),
            counters.defaults.load(Ordering::Relaxed),
        );
        log
    }
}

/// A rule compiled for evaluation: the rule plus its pre-interned
/// `policy.rule` name and condition analysis.
#[derive(Debug)]
struct CompiledRule {
    rule: Rule,
    qualified: &'static str,
    id: &'static str,
    cache_safe: bool,
}

/// One rule's verdict from the engine's load-time cacheability analysis,
/// as exposed by [`PolicyEngine::rule_cacheability`]. External analyses
/// (e.g. `polsec-analyze`) recompute cacheability independently and treat
/// any disagreement with this report as a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleCacheability {
    /// The interned `policy.rule` qualified name.
    pub qualified: &'static str,
    /// The rule's own id within its policy.
    pub rule_id: &'static str,
    /// Whether decisions gated by this rule's condition may be served from
    /// the `(subject, object, action, mode)` decision cache.
    pub cache_safe: bool,
}

#[derive(Debug, Default)]
struct Bucket {
    rules: Vec<u32>,
    cache_safe: bool,
}

/// How [`PolicyEngine::load_bundle`] treats the incoming policy set.
pub enum LoadMode<'a> {
    /// Verify the signature and apply.
    Permissive,
    /// Additionally run a static validator over the verified policy set;
    /// an `Err` vetoes the load. The validator receives the would-be
    /// policy set and returns its findings rendered as text.
    Strict(&'a dyn Fn(&PolicySet) -> Result<(), String>),
}

impl fmt::Debug for LoadMode<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadMode::Permissive => f.write_str("Permissive"),
            LoadMode::Strict(_) => f.write_str("Strict(..)"),
        }
    }
}

/// Default decision-cache capacity (slots).
const DECISION_CACHE_SLOTS: usize = 8_192;

/// The outcome of combining, before rendering into a `Decision`.
#[derive(Debug, Clone, Copy)]
enum Outcome {
    Default,
    FirstMatch(u32),
    DenyOverrides(u32),
    AllowNoDeny(u32),
    Priority(u32),
}

const KIND_DEFAULT: u64 = 0;
const KIND_FIRST_MATCH: u64 = 1;
const KIND_DENY_OVERRIDES: u64 = 2;
const KIND_ALLOW_NO_DENY: u64 = 3;
const KIND_PRIORITY: u64 = 4;

/// The policy evaluation engine. See the module docs for semantics and for
/// the fast-path design.
///
/// # Quickstart
///
/// ```
/// use polsec_core::{AccessRequest, Action, Effect, EntityId, EvalContext, PolicyEngine};
/// use polsec_core::dsl::parse_policy;
///
/// let policy = parse_policy(r#"
///     policy "doors" version 1 {
///         default deny;
///         allow write on asset:door-locks from entry:manual;
///         deny write on asset:door-locks from entry:telematics when mode == normal;
///     }
/// "#)?;
/// let engine = PolicyEngine::from_policy(policy);
///
/// let ctx = EvalContext::new().with_mode("normal");
/// let manual = AccessRequest::new(
///     EntityId::new("entry", "manual"),
///     EntityId::new("asset", "door-locks"),
///     Action::Write,
/// );
/// assert_eq!(engine.decide(&manual, &ctx).effect(), Effect::Allow);
///
/// let remote = AccessRequest::new(
///     EntityId::new("entry", "telematics"),
///     EntityId::new("asset", "door-locks"),
///     Action::Write,
/// );
/// let verdict = engine.decide(&remote, &ctx);
/// assert_eq!(verdict.effect(), Effect::Deny);
/// println!("{}", verdict.reason()); // names the rule that fired
/// # Ok::<(), polsec_core::PolicyError>(())
/// ```
pub struct PolicyEngine {
    rules: Vec<CompiledRule>,
    default_effect: Effect,
    strategy: CombiningStrategy,
    indexing: bool,
    caching: bool,
    // exact-subject index: (namespace, name) symbols → candidate rules
    subject_index: HashMap<(Symbol, Symbol), Bucket>,
    // rules whose subject matcher is not an exact key
    unindexed: Vec<u32>,
    unindexed_cache_safe: bool,
    all_cache_safe: bool,
    rates: RateTable,
    audit: AuditSink,
    counters: EngineCounters,
    cache: GenCache,
    generation: AtomicU32,
    set: PolicySet,
}

impl fmt::Debug for PolicyEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyEngine")
            .field("rules", &self.rules.len())
            .field("strategy", &self.strategy)
            .field("default_effect", &self.default_effect)
            .field("indexing", &self.indexing)
            .field("caching", &self.caching)
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl PolicyEngine {
    /// Creates an engine over a policy set with the default strategy
    /// (deny-overrides), indexing and decision caching enabled, sized for a
    /// shared, service-scale deployment ([`AuditLog::DEFAULT_CAPACITY`]
    /// audit records per shard, `DECISION_CACHE_SLOTS` (8192) cache slots).
    pub fn new(set: PolicySet) -> Self {
        PolicyEngine::with_footprint(set, AuditLog::DEFAULT_CAPACITY, DECISION_CACHE_SLOTS)
    }

    /// Creates an engine with explicit audit and decision-cache sizing.
    ///
    /// [`PolicyEngine::new`] pre-allocates for a fleet-shared engine serving
    /// millions of decisions: `AUDIT_SHARDS` rings of 16k records plus an
    /// eagerly initialised 8k-slot cache — several MB touched per engine.
    /// Workloads that build one engine *per simulated device* (the V2X
    /// ingest path spins up hundreds per run, and rebuilds on every OTA
    /// apply) want [`PolicyEngine::compact`] instead; this constructor is
    /// the shared base. `cache_slots` is rounded up to a power of two with
    /// a floor of 64 by the cache itself.
    pub fn with_footprint(set: PolicySet, audit_capacity: usize, cache_slots: usize) -> Self {
        let mut engine = PolicyEngine {
            rules: Vec::new(),
            default_effect: set.default_effect(),
            strategy: CombiningStrategy::default(),
            indexing: true,
            caching: true,
            subject_index: HashMap::new(),
            unindexed: Vec::new(),
            unindexed_cache_safe: true,
            all_cache_safe: true,
            rates: RateTable::default(),
            audit: AuditSink::new(audit_capacity),
            counters: EngineCounters::default(),
            cache: GenCache::with_capacity(cache_slots),
            generation: AtomicU32::new(0),
            set,
        };
        engine.rebuild();
        engine
    }

    /// Audit capacity for [`PolicyEngine::compact`] engines: enough for the
    /// per-device decision tails the V2X scenarios inspect.
    pub const COMPACT_AUDIT_CAPACITY: usize = 64;

    /// Decision-cache slots for [`PolicyEngine::compact`] engines (the
    /// cache floors this at its 64-slot minimum).
    pub const COMPACT_CACHE_SLOTS: usize = 256;

    /// Creates a per-device engine: identical decisions to
    /// [`PolicyEngine::new`], but with a footprint in the tens of KB rather
    /// than MB. Use for simulations that construct an engine per vehicle
    /// (and rebuild on OTA policy swaps) — the full-size pre-allocation
    /// dominated the v2x bench's allocator time before this existed.
    pub fn compact(set: PolicySet) -> Self {
        PolicyEngine::with_footprint(
            set,
            PolicyEngine::COMPACT_AUDIT_CAPACITY,
            PolicyEngine::COMPACT_CACHE_SLOTS,
        )
    }

    /// Creates an engine from a single policy.
    pub fn from_policy(p: crate::policy::Policy) -> Self {
        PolicyEngine::new(PolicySet::from_policy(p))
    }

    /// [`PolicyEngine::compact`] over a single policy.
    pub fn compact_from_policy(p: crate::policy::Policy) -> Self {
        PolicyEngine::compact(PolicySet::from_policy(p))
    }

    /// Sets the combining strategy (builder style).
    pub fn with_strategy(mut self, s: CombiningStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Enables or disables the subject index (for the E4 ablation).
    pub fn with_indexing(mut self, enabled: bool) -> Self {
        self.indexing = enabled;
        self
    }

    /// Enables or disables the decision cache (for equivalence testing and
    /// ablation; enabled by default).
    pub fn with_caching(mut self, enabled: bool) -> Self {
        self.caching = enabled;
        self
    }

    /// The active combining strategy.
    pub fn strategy(&self) -> CombiningStrategy {
        self.strategy
    }

    /// The policy set the engine evaluates.
    pub fn policy_set(&self) -> &PolicySet {
        &self.set
    }

    /// The decision-cache generation: bumped by every [`PolicyEngine::reload`],
    /// so entries cached under an earlier policy can never answer.
    pub fn cache_generation(&self) -> u32 {
        self.generation.load(Ordering::Acquire)
    }

    /// Number of dynamically-tracked (undeclared) rate keys currently held.
    pub fn dynamic_rate_keys(&self) -> usize {
        self.rates.dynamic_key_count()
    }

    /// Replaces the policy set (a policy update taking effect), rebuilds
    /// indexes and invalidates the decision cache by bumping its
    /// generation. Audit history and rate windows are preserved.
    pub fn reload(&mut self, set: PolicySet) {
        self.default_effect = set.default_effect();
        self.set = set;
        self.rebuild();
        self.generation.fetch_add(1, Ordering::AcqRel);
        // Erasing the slots as well means even a wrapped generation counter
        // can never resurrect a stale entry.
        self.cache.clear();
    }

    /// Verifies a signed bundle against `key` and, on success, reloads the
    /// engine with the bundle's policies (see [`PolicyEngine::reload`]).
    /// Returns the applied bundle version.
    ///
    /// With [`LoadMode::Strict`] the supplied validator — typically
    /// `polsec-analyze`'s Layer-1 linter — runs over the incoming policy
    /// set *before* the swap; a validator error aborts the load with
    /// [`PolicyError::AnalysisRejected`] and the engine keeps its current
    /// policies, indexes and cache generation untouched.
    ///
    /// # Errors
    /// [`PolicyError::BadSignature`] / [`PolicyError::MalformedBundle`] on
    /// verification failure, [`PolicyError::AnalysisRejected`] on a strict
    /// validator veto.
    pub fn load_bundle(
        &mut self,
        bundle: &SignedBundle,
        key: &[u8],
        mode: LoadMode<'_>,
    ) -> Result<u64, PolicyError> {
        let bundle = bundle.verify(key)?;
        let set: PolicySet = bundle.policies.iter().cloned().collect();
        if let LoadMode::Strict(validator) = mode {
            if let Err(detail) = validator(&set) {
                return Err(PolicyError::AnalysisRejected { detail });
            }
        }
        self.reload(set);
        Ok(bundle.version)
    }

    /// The engine's load-time cacheability analysis, per rule, in policy
    /// set order. See [`RuleCacheability`].
    pub fn rule_cacheability(&self) -> Vec<RuleCacheability> {
        self.rules
            .iter()
            .map(|r| RuleCacheability {
                qualified: r.qualified,
                rule_id: r.id,
                cache_safe: r.cache_safe,
            })
            .collect()
    }

    /// Whether every loaded rule is cache-safe (the whole-table aggregate
    /// of the load-time cacheability analysis).
    pub fn all_cache_safe(&self) -> bool {
        self.all_cache_safe
    }

    fn rebuild(&mut self) {
        self.rules.clear();
        self.subject_index.clear();
        self.unindexed.clear();
        self.unindexed_cache_safe = true;
        self.all_cache_safe = true;
        for (owner, rule) in self.set.rules() {
            let idx = self.rules.len() as u32;
            let cache_safe = rule.condition().is_cache_safe();
            self.all_cache_safe &= cache_safe;
            match rule.subject().exact_key_symbols() {
                Some(key) => {
                    let bucket = self.subject_index.entry(key).or_insert(Bucket {
                        rules: Vec::new(),
                        cache_safe: true,
                    });
                    bucket.rules.push(idx);
                    bucket.cache_safe &= cache_safe;
                }
                None => {
                    self.unindexed.push(idx);
                    self.unindexed_cache_safe &= cache_safe;
                }
            }
            let qualified = Symbol::intern(&format!("{owner}.{}", rule.id())).as_str();
            self.rules.push(CompiledRule {
                qualified,
                id: rule.id(),
                rule: rule.clone(),
                cache_safe,
            });
        }
        // A decision is cacheable only if every rule that could apply is;
        // unindexed rules are candidates for every request.
        for bucket in self.subject_index.values_mut() {
            bucket.cache_safe &= self.unindexed_cache_safe;
        }
        self.rates
            .rebuild(self.set.rate_keys().iter().map(|k| Symbol::intern(k)));
    }

    /// Total number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Notes an event for a rate key at `now_us` (drives `RateAtMost`
    /// conditions). Call once per observed event (e.g. per frame). Keys
    /// declared by the loaded policies update lock-free atomic windows;
    /// undeclared keys fall into a bounded, pruned side table.
    pub fn observe_rate_event(&self, key: &str, now_us: u64) {
        self.rates.observe(key, now_us);
    }

    /// Notes an event for a rate key inside a *scope*: an independent set
    /// of per-key windows identified by `scope`. A decision evaluated
    /// under an [`EvalContext`] carrying the same scope
    /// ([`EvalContext::with_rate_scope`]) reads these windows instead of
    /// the global ones, so tenants of one shared engine (e.g. the
    /// vehicles of a fleet simulation) get fully independent rate
    /// tracking. Scoped windows are reset by [`PolicyEngine::reload`],
    /// and — unlike the unscoped path — events for keys the loaded
    /// policies do not declare are dropped rather than parked, since no
    /// decision path ever reads them.
    pub fn observe_rate_event_scoped(&self, scope: u64, key: &str, now_us: u64) {
        self.rates.observe_scoped(scope, key, now_us);
    }

    /// Decides a request at time 0.
    pub fn decide(&self, req: &AccessRequest, ctx: &EvalContext) -> Decision {
        self.decide_at(req, ctx, 0)
    }

    /// Decides a request at an explicit time (microseconds), which both
    /// timestamps the audit record and positions the rate windows.
    pub fn decide_at(&self, req: &AccessRequest, ctx: &EvalContext, now_us: u64) -> Decision {
        let subject_key = (
            req.subject().namespace_symbol(),
            req.subject().name_symbol(),
        );
        let bucket = if self.indexing {
            self.subject_index.get(&subject_key)
        } else {
            None
        };
        let cacheable = self.caching
            && if self.indexing {
                bucket.map_or(self.unindexed_cache_safe, |b| b.cache_safe)
            } else {
                self.all_cache_safe
            };

        let key = self.cache_key(req, ctx);
        if cacheable {
            if let Some(packed) = self.cache.lookup(key) {
                let decision = self.unpack(packed);
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.finish(req, decision, 0, now_us);
                return decision;
            }
        }

        let mut examined = 0u64;
        let overlay = RateOverlay { table: &self.rates, ctx, now_us };
        let outcome = if self.indexing {
            let indexed: &[u32] = bucket.map(|b| b.rules.as_slice()).unwrap_or(&[]);
            self.combine(
                req,
                ctx,
                &overlay,
                MergeSorted::new(indexed, &self.unindexed),
                &mut examined,
            )
        } else {
            self.combine(req, ctx, &overlay, 0..self.rules.len() as u32, &mut examined)
        };
        let decision = self.render(outcome);
        if cacheable {
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            self.cache.insert(key, pack_outcome(outcome));
        }
        self.finish(req, decision, examined, now_us);
        decision
    }

    #[inline]
    fn cache_key(&self, req: &AccessRequest, ctx: &EvalContext) -> [u64; 3] {
        let s = req.subject();
        let o = req.object();
        let k0 = (u64::from(s.namespace_symbol().as_u32()) << 32)
            | u64::from(s.name_symbol().as_u32());
        let k1 = (u64::from(o.namespace_symbol().as_u32()) << 32)
            | u64::from(o.name_symbol().as_u32());
        let generation = u64::from(self.generation.load(Ordering::Acquire)) & 0xF_FFFF;
        let (mode_present, mode) = match ctx.mode_symbol() {
            Some(m) => (1u64, u64::from(m.as_u32())),
            None => (0, 0),
        };
        let k2 = KEY_VALID
            | (generation << 42)
            | (mode_present << 41)
            | (mode << 9)
            | ((req.action() as u64) << 1);
        [k0, k1, k2]
    }

    fn unpack(&self, packed: u64) -> Decision {
        let idx = (packed >> 3) as u32;
        match packed & 0b111 {
            KIND_DEFAULT => self.render(Outcome::Default),
            KIND_FIRST_MATCH => self.render(Outcome::FirstMatch(idx)),
            KIND_DENY_OVERRIDES => self.render(Outcome::DenyOverrides(idx)),
            KIND_ALLOW_NO_DENY => self.render(Outcome::AllowNoDeny(idx)),
            _ => self.render(Outcome::Priority(idx)),
        }
    }

    fn render(&self, outcome: Outcome) -> Decision {
        let tag = |idx: u32| {
            let r = &self.rules[idx as usize];
            RuleTag { qualified: r.qualified, id: r.id }
        };
        match outcome {
            Outcome::Default => Decision {
                effect: self.default_effect,
                rule: None,
                kind: ReasonKind::Default,
            },
            Outcome::FirstMatch(i) => Decision {
                effect: self.rules[i as usize].rule.effect(),
                rule: Some(tag(i)),
                kind: ReasonKind::FirstMatch,
            },
            Outcome::DenyOverrides(i) => Decision {
                effect: Effect::Deny,
                rule: Some(tag(i)),
                kind: ReasonKind::DenyOverrides,
            },
            Outcome::AllowNoDeny(i) => Decision {
                effect: Effect::Allow,
                rule: Some(tag(i)),
                kind: ReasonKind::AllowNoDeny,
            },
            Outcome::Priority(i) => Decision {
                effect: self.rules[i as usize].rule.effect(),
                rule: Some(tag(i)),
                kind: ReasonKind::Priority(self.rules[i as usize].rule.priority()),
            },
        }
    }

    #[inline]
    fn finish(&self, req: &AccessRequest, decision: Decision, examined: u64, now_us: u64) {
        let c = &self.counters;
        c.decisions.fetch_add(1, Ordering::Relaxed);
        c.rules_examined.fetch_add(examined, Ordering::Relaxed);
        match decision.effect {
            Effect::Allow => c.allows.fetch_add(1, Ordering::Relaxed),
            Effect::Deny => c.denies.fetch_add(1, Ordering::Relaxed),
        };
        if decision.rule.is_none() {
            c.defaults.fetch_add(1, Ordering::Relaxed);
        }
        self.audit
            .record(now_us, *req, decision.effect, decision.rule.map(|t| t.qualified));
    }

    fn combine<I: Iterator<Item = u32>>(
        &self,
        req: &AccessRequest,
        ctx: &EvalContext,
        rates: &dyn RateSource,
        candidates: I,
        examined: &mut u64,
    ) -> Outcome {
        match self.strategy {
            CombiningStrategy::FirstMatch => {
                for i in candidates {
                    *examined += 1;
                    if self.rules[i as usize].rule.applies_with(req, ctx, rates) {
                        return Outcome::FirstMatch(i);
                    }
                }
                Outcome::Default
            }
            CombiningStrategy::DenyOverrides => {
                let mut allow: Option<u32> = None;
                for i in candidates {
                    *examined += 1;
                    let rule = &self.rules[i as usize].rule;
                    if rule.applies_with(req, ctx, rates) {
                        if rule.effect() == Effect::Deny {
                            return Outcome::DenyOverrides(i);
                        }
                        if allow.is_none() {
                            allow = Some(i);
                        }
                    }
                }
                match allow {
                    Some(i) => Outcome::AllowNoDeny(i),
                    None => Outcome::Default,
                }
            }
            CombiningStrategy::PriorityOrder => {
                let mut best: Option<(i32, Effect, u32)> = None;
                for i in candidates {
                    *examined += 1;
                    let rule = &self.rules[i as usize].rule;
                    if rule.applies_with(req, ctx, rates) {
                        let candidate = (rule.priority(), rule.effect(), i);
                        best = Some(match best.take() {
                            None => candidate,
                            Some(cur) => {
                                let wins = candidate.0 > cur.0
                                    // priority tie: deny wins over allow
                                    || (candidate.0 == cur.0
                                        && candidate.1 == Effect::Deny
                                        && cur.1 == Effect::Allow);
                                if wins { candidate } else { cur }
                            }
                        });
                    }
                }
                match best {
                    Some((_, _, i)) => Outcome::Priority(i),
                    None => Outcome::Default,
                }
            }
        }
    }

    /// Snapshot of evaluation statistics.
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        EngineStats {
            decisions: c.decisions.load(Ordering::Relaxed),
            allows: c.allows.load(Ordering::Relaxed),
            denies: c.denies.load(Ordering::Relaxed),
            defaults: c.defaults.load(Ordering::Relaxed),
            rules_examined: c.rules_examined.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Runs a closure over a merged snapshot of the audit log.
    pub fn with_audit<R>(&self, f: impl FnOnce(&AuditLog) -> R) -> R {
        f(&self.audit.snapshot(&self.counters))
    }
}

fn pack_outcome(outcome: Outcome) -> u64 {
    let (kind, idx) = match outcome {
        Outcome::Default => (KIND_DEFAULT, 0),
        Outcome::FirstMatch(i) => (KIND_FIRST_MATCH, i),
        Outcome::DenyOverrides(i) => (KIND_DENY_OVERRIDES, i),
        Outcome::AllowNoDeny(i) => (KIND_ALLOW_NO_DENY, i),
        Outcome::Priority(i) => (KIND_PRIORITY, i),
    };
    (u64::from(idx) << 3) | kind
}

/// Merges two ascending index slices without allocating.
struct MergeSorted<'a> {
    a: &'a [u32],
    b: &'a [u32],
    i: usize,
    j: usize,
}

impl<'a> MergeSorted<'a> {
    fn new(a: &'a [u32], b: &'a [u32]) -> Self {
        MergeSorted { a, b, i: 0, j: 0 }
    }
}

impl Iterator for MergeSorted<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match (self.a.get(self.i), self.b.get(self.j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    self.i += 1;
                    Some(x)
                } else {
                    self.j += 1;
                    Some(y)
                }
            }
            (Some(&x), None) => {
                self.i += 1;
                Some(x)
            }
            (None, Some(&y)) => {
                self.j += 1;
                Some(y)
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionSet};
    use crate::condition::Condition;
    use crate::entity::{EntityId, EntityMatcher, Pattern};
    use crate::policy::Policy;

    fn allow_read(id: &str, asset: &str) -> Rule {
        Rule::new(
            id,
            Effect::Allow,
            ActionSet::only(Action::Read),
            EntityMatcher::new("entry", Pattern::Any),
            EntityMatcher::new("asset", Pattern::Exact(asset.into())),
        )
    }

    fn deny_write(id: &str, asset: &str) -> Rule {
        Rule::new(
            id,
            Effect::Deny,
            ActionSet::only(Action::Write),
            EntityMatcher::new("entry", Pattern::Any),
            EntityMatcher::new("asset", Pattern::Exact(asset.into())),
        )
    }

    fn req(subject: &str, object: &str, action: Action) -> AccessRequest {
        AccessRequest::new(
            EntityId::parse(subject).unwrap(),
            EntityId::parse(object).unwrap(),
            action,
        )
    }

    fn demo_engine(strategy: CombiningStrategy) -> PolicyEngine {
        let p = Policy::new("demo", 1)
            .add_rule(allow_read("r-read", "ecu"))
            .unwrap()
            .add_rule(deny_write("r-nowrite", "ecu"))
            .unwrap();
        PolicyEngine::from_policy(p).with_strategy(strategy)
    }

    #[test]
    fn default_deny_when_no_rule_applies() {
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        let d = e.decide(&req("entry:x", "asset:unknown", Action::Read), &EvalContext::new());
        assert_eq!(d.effect(), Effect::Deny);
        assert_eq!(d.rule(), None);
        assert!(d.reason().contains("default"));
    }

    #[test]
    fn allow_and_deny_paths() {
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        let ctx = EvalContext::new();
        assert!(e.decide(&req("entry:s", "asset:ecu", Action::Read), &ctx).is_allow());
        let d = e.decide(&req("entry:s", "asset:ecu", Action::Write), &ctx);
        assert_eq!(d.effect(), Effect::Deny);
        assert_eq!(d.rule(), Some("demo.r-nowrite"));
    }

    #[test]
    fn deny_overrides_beats_allow() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "allow-all",
                    Effect::Allow,
                    ActionSet::all(),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                ),
            )
            .unwrap()
            .add_rule(
                Rule::new(
                    "deny-ecu-write",
                    Effect::Deny,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::new("asset", Pattern::Exact("ecu".into())),
                ),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let ctx = EvalContext::new();
        assert!(e.decide(&req("entry:x", "asset:ecu", Action::Read), &ctx).is_allow());
        assert!(!e.decide(&req("entry:x", "asset:ecu", Action::Write), &ctx).is_allow());
    }

    #[test]
    fn first_match_order_matters() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "allow-first",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                ),
            )
            .unwrap()
            .add_rule(deny_write("deny-later", "ecu"))
            .unwrap();
        let e = PolicyEngine::from_policy(p).with_strategy(CombiningStrategy::FirstMatch);
        // first-match sees the allow first
        let d = e.decide(&req("entry:x", "asset:ecu", Action::Write), &EvalContext::new());
        assert!(d.is_allow());
        assert_eq!(d.rule(), Some("p.allow-first"));
    }

    #[test]
    fn priority_order_highest_wins_ties_deny() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "low-allow",
                    Effect::Allow,
                    ActionSet::only(Action::Read),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .with_priority(1),
            )
            .unwrap()
            .add_rule(
                Rule::new(
                    "high-deny",
                    Effect::Deny,
                    ActionSet::only(Action::Read),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .with_priority(10),
            )
            .unwrap()
            .add_rule(
                Rule::new(
                    "tie-allow",
                    Effect::Allow,
                    ActionSet::only(Action::Read),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .with_priority(10),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p).with_strategy(CombiningStrategy::PriorityOrder);
        let d = e.decide(&req("entry:x", "asset:y", Action::Read), &EvalContext::new());
        assert_eq!(d.effect(), Effect::Deny, "tie at priority 10 resolves to deny");
        assert_eq!(d.rule(), Some("p.high-deny"));
        assert!(d.reason().contains("priority 10"));
    }

    #[test]
    fn mode_conditions_gate_rules() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "diag-write",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::new("entry", Pattern::Exact("obd".into())),
                    EntityMatcher::new("asset", Pattern::Exact("ecu".into())),
                )
                .when(Condition::InMode("remote diagnostic".into())),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let r = req("entry:obd", "asset:ecu", Action::Write);
        assert!(!e.decide(&r, &EvalContext::new().with_mode("normal")).is_allow());
        assert!(e
            .decide(&r, &EvalContext::new().with_mode("remote diagnostic"))
            .is_allow());
    }

    #[test]
    fn rate_condition_with_tracker() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "rate-limited",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .when(Condition::RateAtMost { key: "w".into(), max_per_sec: 2 }),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let r = req("entry:x", "asset:y", Action::Write);
        let ctx = EvalContext::new();
        // two events within the window: still allowed
        e.observe_rate_event("w", 1_000);
        e.observe_rate_event("w", 2_000);
        assert!(e.decide_at(&r, &ctx, 3_000).is_allow());
        // third event pushes over the limit
        e.observe_rate_event("w", 3_000);
        assert!(!e.decide_at(&r, &ctx, 4_000).is_allow());
        // a second later the window has drained
        assert!(e.decide_at(&r, &ctx, 1_200_000).is_allow());
    }

    #[test]
    fn scoped_rate_windows_are_independent() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "rate-limited",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .when(Condition::RateAtMost { key: "cmd".into(), max_per_sec: 2 }),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let r = req("entry:x", "asset:y", Action::Write);
        let scope_a = EvalContext::new().with_rate_scope(0);
        let scope_b = EvalContext::new().with_rate_scope(1);
        // flood scope 0 only
        for t in 0..5 {
            e.observe_rate_event_scoped(0, "cmd", 1_000 + t);
        }
        assert!(!e.decide_at(&r, &scope_a, 2_000).is_allow(), "scope 0 over limit");
        assert!(e.decide_at(&r, &scope_b, 2_000).is_allow(), "scope 1 untouched");
        // the global (unscoped) window is untouched by scoped observations
        assert!(e.decide_at(&r, &EvalContext::new(), 2_000).is_allow());
        // and global observations do not bleed into scopes
        for t in 0..5 {
            e.observe_rate_event("cmd", 10_000 + t);
        }
        assert!(e.decide_at(&r, &scope_b, 11_000).is_allow());
        assert!(!e.decide_at(&r, &EvalContext::new(), 11_000).is_allow());
    }

    #[test]
    fn scoped_undeclared_keys_are_dropped_not_parked() {
        // No decision path reads scoped undeclared keys, so they must not
        // occupy (or evict from) the bounded dynamic table.
        let e = PolicyEngine::from_policy(Policy::new("empty", 1));
        e.observe_rate_event_scoped(3, "burst", 1_000);
        e.observe_rate_event_scoped(4, "burst", 1_000);
        assert_eq!(e.dynamic_rate_keys(), 0);
        // unscoped undeclared keys still get their replay-on-declare slot
        e.observe_rate_event("burst", 1_000);
        assert_eq!(e.dynamic_rate_keys(), 1);
    }

    #[test]
    fn reload_resets_scoped_windows() {
        let rate_rule = |key: &str| {
            Policy::new("p", 1)
                .add_rule(
                    Rule::new(
                        "rl",
                        Effect::Allow,
                        ActionSet::only(Action::Write),
                        EntityMatcher::anything(),
                        EntityMatcher::anything(),
                    )
                    .when(Condition::RateAtMost { key: key.into(), max_per_sec: 1 }),
                )
                .unwrap()
        };
        let mut e = PolicyEngine::from_policy(rate_rule("k"));
        let scoped = EvalContext::new().with_rate_scope(7);
        e.observe_rate_event_scoped(7, "k", 1_000);
        e.observe_rate_event_scoped(7, "k", 1_001);
        let r = req("entry:x", "asset:y", Action::Write);
        assert!(!e.decide_at(&r, &scoped, 2_000).is_allow());
        e.reload(PolicySet::from_policy(rate_rule("k")));
        assert!(
            e.decide_at(&r, &scoped, 2_000).is_allow(),
            "a reload starts every scope's windows empty"
        );
    }

    #[test]
    fn index_and_linear_agree() {
        // same decisions with indexing on and off
        let mut p = Policy::new("p", 1);
        for i in 0..50 {
            p = p
                .add_rule(
                    Rule::new(
                        format!("r{i}"),
                        if i % 3 == 0 { Effect::Deny } else { Effect::Allow },
                        ActionSet::only(Action::Read),
                        EntityMatcher::new("entry", Pattern::Exact(format!("s{i}"))),
                        EntityMatcher::anything(),
                    ),
                )
                .unwrap();
        }
        let set = PolicySet::from_policy(p);
        let indexed = PolicyEngine::new(set.clone());
        let linear = PolicyEngine::new(set).with_indexing(false);
        let ctx = EvalContext::new();
        for i in 0..50 {
            let r = req(&format!("entry:s{i}"), "asset:x", Action::Read);
            assert_eq!(
                indexed.decide(&r, &ctx).effect(),
                linear.decide(&r, &ctx).effect(),
                "rule {i}"
            );
        }
        // index examines far fewer rules
        assert!(indexed.stats().rules_examined < linear.stats().rules_examined / 10);
    }

    #[test]
    fn stats_and_audit_populate() {
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        let ctx = EvalContext::new();
        e.decide(&req("entry:a", "asset:ecu", Action::Read), &ctx);
        e.decide(&req("entry:a", "asset:ecu", Action::Write), &ctx);
        let s = e.stats();
        assert_eq!(s.decisions, 2);
        assert_eq!(s.allows, 1);
        assert_eq!(s.denies, 1);
        e.with_audit(|log| {
            assert_eq!(log.len(), 2);
            assert_eq!(log.denies(), 1);
        });
    }

    #[test]
    fn reload_swaps_policies() {
        let mut e = demo_engine(CombiningStrategy::DenyOverrides);
        let r = req("entry:a", "asset:ecu", Action::Write);
        assert!(!e.decide(&r, &EvalContext::new()).is_allow());
        // new policy version allows writes
        let p2 = Policy::new("demo", 2)
            .add_rule(
                Rule::new(
                    "r-write",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                ),
            )
            .unwrap();
        e.reload(PolicySet::from_policy(p2));
        assert!(e.decide(&r, &EvalContext::new()).is_allow());
        // audit survives the reload
        e.with_audit(|log| assert_eq!(log.len(), 2));
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        let ctx = EvalContext::new();
        let r = req("entry:a", "asset:ecu", Action::Read);
        let first = e.decide(&r, &ctx);
        let stats = e.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        let second = e.decide(&r, &ctx);
        let stats = e.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(first, second);
        // a different request is its own miss
        e.decide(&req("entry:b", "asset:ecu", Action::Read), &ctx);
        assert_eq!(e.stats().cache_misses, 2);
    }

    #[test]
    fn cached_decisions_still_audit_and_count() {
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        let ctx = EvalContext::new();
        let r = req("entry:a", "asset:ecu", Action::Write);
        for _ in 0..5 {
            e.decide(&r, &ctx);
        }
        let s = e.stats();
        assert_eq!(s.decisions, 5);
        assert_eq!(s.denies, 5);
        assert_eq!(s.cache_hits, 4);
        e.with_audit(|log| {
            assert_eq!(log.len(), 5);
            assert_eq!(log.denies(), 5);
        });
    }

    #[test]
    fn reload_invalidates_cached_decisions() {
        let mut e = demo_engine(CombiningStrategy::DenyOverrides);
        let r = req("entry:a", "asset:ecu", Action::Write);
        let ctx = EvalContext::new();
        // Warm the cache with a deny...
        assert!(!e.decide(&r, &ctx).is_allow());
        assert!(!e.decide(&r, &ctx).is_allow());
        assert_eq!(e.stats().cache_hits, 1);
        let generation_before = e.cache_generation();
        // ...then reload with a policy that allows the same request.
        let p2 = Policy::new("demo", 2)
            .add_rule(
                Rule::new(
                    "r-write",
                    Effect::Allow,
                    ActionSet::all(),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                ),
            )
            .unwrap();
        e.reload(PolicySet::from_policy(p2));
        assert_eq!(e.cache_generation(), generation_before + 1);
        // The stale cached deny must not answer.
        let hits_before = e.stats().cache_hits;
        assert!(e.decide(&r, &ctx).is_allow(), "stale generation entry answered");
        assert_eq!(e.stats().cache_hits, hits_before, "reload must force a miss");
    }

    #[test]
    fn mode_is_part_of_the_cache_key() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "diag",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .when(Condition::InMode("diag".into())),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let r = req("entry:x", "asset:y", Action::Write);
        // Same request, different modes: both answers must be fresh and
        // correct, then each repeat hits its own entry.
        assert!(e.decide(&r, &EvalContext::new().with_mode("diag")).is_allow());
        assert!(!e.decide(&r, &EvalContext::new().with_mode("normal")).is_allow());
        assert!(e.decide(&r, &EvalContext::new().with_mode("diag")).is_allow());
        assert!(!e.decide(&r, &EvalContext::new().with_mode("normal")).is_allow());
        assert_eq!(e.stats().cache_hits, 2);
    }

    #[test]
    fn state_conditions_bypass_the_cache() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "while-parked",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .when(Condition::StateEquals { key: "parked".into(), value: "yes".into() }),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let r = req("entry:x", "asset:y", Action::Write);
        let parked = EvalContext::new().with_state("parked", "yes");
        let moving = EvalContext::new().with_state("parked", "no");
        assert!(e.decide(&r, &parked).is_allow());
        assert!(!e.decide(&r, &moving).is_allow(), "state change must be seen");
        assert!(e.decide(&r, &parked).is_allow());
        let s = e.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (0, 0), "never cached");
    }

    #[test]
    fn rate_conditions_bypass_the_cache() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "flood-gate",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .when(Condition::RateAtMost { key: "f".into(), max_per_sec: 1 }),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let r = req("entry:x", "asset:y", Action::Write);
        let ctx = EvalContext::new();
        assert!(e.decide_at(&r, &ctx, 1_000).is_allow());
        e.observe_rate_event("f", 2_000);
        e.observe_rate_event("f", 3_000);
        assert!(!e.decide_at(&r, &ctx, 4_000).is_allow(), "rate change must be seen");
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn caching_disabled_still_correct() {
        let e = demo_engine(CombiningStrategy::DenyOverrides).with_caching(false);
        let ctx = EvalContext::new();
        let r = req("entry:a", "asset:ecu", Action::Read);
        assert!(e.decide(&r, &ctx).is_allow());
        assert!(e.decide(&r, &ctx).is_allow());
        let s = e.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (0, 0));
    }

    #[test]
    fn dynamic_rate_keys_are_bounded_and_pruned(){
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        // Undeclared keys go to the bounded side table...
        for i in 0..2_000 {
            e.observe_rate_event(&format!("burst-key-{i}"), 1_000 + i);
        }
        assert!(e.dynamic_rate_keys() <= 1_024, "dynamic keys must stay bounded");
        // ...and a sweep far in the future prunes idle windows entirely.
        e.observe_rate_event("late-key", 10_000_000_000);
        for i in 0..1_100 {
            e.observe_rate_event(&format!("late-{i}"), 10_000_000_000 + i);
        }
        assert!(e.dynamic_rate_keys() <= 1_024);
    }

    #[test]
    fn merge_sorted_interleaves() {
        let collect = |a: &[u32], b: &[u32]| MergeSorted::new(a, b).collect::<Vec<u32>>();
        assert_eq!(collect(&[1, 4, 6], &[2, 3, 5]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(collect(&[], &[1]), vec![1]);
        assert_eq!(collect(&[1], &[]), vec![1]);
        assert_eq!(collect(&[], &[]), Vec::<u32>::new());
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PolicyEngine>();
    }

    #[test]
    fn strategy_display() {
        assert_eq!(CombiningStrategy::DenyOverrides.to_string(), "deny-overrides");
        assert_eq!(CombiningStrategy::FirstMatch.to_string(), "first-match");
        assert_eq!(CombiningStrategy::PriorityOrder.to_string(), "priority-order");
    }

    #[test]
    fn stats_pairs_mirror_fields() {
        let stats = EngineStats {
            decisions: 7,
            allows: 4,
            denies: 2,
            defaults: 1,
            rules_examined: 30,
            cache_hits: 5,
            cache_misses: 2,
        };
        let pairs = stats.as_pairs();
        assert_eq!(pairs.len(), 7);
        let get = |name: &str| pairs.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(get("decisions"), 7);
        assert_eq!(get("allows"), 4);
        assert_eq!(get("cache_misses"), 2);
        // every name is distinct
        let mut names: Vec<&str> = pairs.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
