//! The policy evaluation engine.
//!
//! [`PolicyEngine`] evaluates [`AccessRequest`]s against a [`PolicySet`]
//! under a configurable [`CombiningStrategy`]:
//!
//! * **deny-overrides** (default): any applying deny rule denies; otherwise
//!   any applying allow rule allows; otherwise the set's default effect.
//!   This is the least-privilege composition the paper's approach implies.
//! * **first-match**: rules are consulted in declaration order; the first
//!   applying rule wins (firewall-style).
//! * **priority-order**: the applying rule with the highest priority wins;
//!   priority ties resolve to deny.
//!
//! The engine keeps a subject index (exact `namespace:name` → rules) so
//! common requests skip non-matching rules; the E4 bench ablates this.
//! It also owns the sliding-window rate tracker backing
//! [`Condition::RateAtMost`](crate::Condition::RateAtMost) and an
//! [`AuditLog`]. Both live behind [`parking_lot`] locks so `decide` takes
//! `&self` and the engine is `Sync` — enforcement points share one engine.

use crate::audit::AuditLog;
use crate::policy::{Effect, PolicySet, Rule};
use crate::request::{AccessRequest, EvalContext};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// How applying rules combine into one decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CombiningStrategy {
    /// Deny if any applying rule denies (least privilege). The default.
    #[default]
    DenyOverrides,
    /// First applying rule in declaration order wins.
    FirstMatch,
    /// Highest-priority applying rule wins; ties resolve to deny.
    PriorityOrder,
}

impl fmt::Display for CombiningStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CombiningStrategy::DenyOverrides => "deny-overrides",
            CombiningStrategy::FirstMatch => "first-match",
            CombiningStrategy::PriorityOrder => "priority-order",
        };
        f.write_str(s)
    }
}

/// The engine's answer for one request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    effect: Effect,
    rule: Option<String>,
    reason: String,
}

impl Decision {
    /// The decided effect.
    pub fn effect(&self) -> Effect {
        self.effect
    }

    /// Whether access was allowed.
    pub fn is_allow(&self) -> bool {
        self.effect == Effect::Allow
    }

    /// The determining rule as `policy.rule`, or `None` for a default
    /// decision.
    pub fn rule(&self) -> Option<&str> {
        self.rule.as_deref()
    }

    /// Human-readable explanation.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.effect, self.reason)
    }
}

/// Sliding-window event rate tracker (1-second window).
#[derive(Debug, Default)]
struct RateTracker {
    windows: HashMap<String, VecDeque<u64>>,
}

/// Window length for rate conditions, in microseconds.
const RATE_WINDOW_US: u64 = 1_000_000;

impl RateTracker {
    fn observe(&mut self, key: &str, now_us: u64) {
        let w = self.windows.entry(key.to_string()).or_default();
        w.push_back(now_us);
        Self::prune(w, now_us);
    }

    fn rate(&mut self, key: &str, now_us: u64) -> f64 {
        match self.windows.get_mut(key) {
            Some(w) => {
                Self::prune(w, now_us);
                w.len() as f64
            }
            None => 0.0,
        }
    }

    fn prune(w: &mut VecDeque<u64>, now_us: u64) {
        let cutoff = now_us.saturating_sub(RATE_WINDOW_US);
        while w.front().is_some_and(|&t| t < cutoff) {
            w.pop_front();
        }
    }
}

/// Evaluation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total decisions taken.
    pub decisions: u64,
    /// Of which allows.
    pub allows: u64,
    /// Of which denies.
    pub denies: u64,
    /// Decisions that fell through to the default effect.
    pub defaults: u64,
    /// Rules examined across all decisions (index effectiveness metric).
    pub rules_examined: u64,
}

/// The policy evaluation engine. See the module docs for semantics.
pub struct PolicyEngine {
    rules: Vec<(String, Rule)>, // (owning policy name, rule) in declaration order
    default_effect: Effect,
    strategy: CombiningStrategy,
    indexing: bool,
    // exact-subject index: (namespace, name) → indices into `rules`
    subject_index: HashMap<(String, String), Vec<usize>>,
    // rules whose subject matcher is not an exact key
    unindexed: Vec<usize>,
    audit: Mutex<AuditLog>,
    rates: Mutex<RateTracker>,
    stats: RwLock<EngineStats>,
    set: PolicySet,
}

impl fmt::Debug for PolicyEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyEngine")
            .field("rules", &self.rules.len())
            .field("strategy", &self.strategy)
            .field("default_effect", &self.default_effect)
            .field("indexing", &self.indexing)
            .finish()
    }
}

impl PolicyEngine {
    /// Creates an engine over a policy set with the default strategy
    /// (deny-overrides) and indexing enabled.
    pub fn new(set: PolicySet) -> Self {
        let mut engine = PolicyEngine {
            rules: Vec::new(),
            default_effect: set.default_effect(),
            strategy: CombiningStrategy::default(),
            indexing: true,
            subject_index: HashMap::new(),
            unindexed: Vec::new(),
            audit: Mutex::new(AuditLog::default()),
            rates: Mutex::new(RateTracker::default()),
            stats: RwLock::new(EngineStats::default()),
            set,
        };
        engine.rebuild();
        engine
    }

    /// Creates an engine from a single policy.
    pub fn from_policy(p: crate::policy::Policy) -> Self {
        PolicyEngine::new(PolicySet::from_policy(p))
    }

    /// Sets the combining strategy (builder style).
    pub fn with_strategy(mut self, s: CombiningStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Enables or disables the subject index (for the E4 ablation).
    pub fn with_indexing(mut self, enabled: bool) -> Self {
        self.indexing = enabled;
        self
    }

    /// The active combining strategy.
    pub fn strategy(&self) -> CombiningStrategy {
        self.strategy
    }

    /// The policy set the engine evaluates.
    pub fn policy_set(&self) -> &PolicySet {
        &self.set
    }

    /// Replaces the policy set (a policy update taking effect) and rebuilds
    /// indexes. Audit history and rate windows are preserved.
    pub fn reload(&mut self, set: PolicySet) {
        self.default_effect = set.default_effect();
        self.set = set;
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.rules.clear();
        self.subject_index.clear();
        self.unindexed.clear();
        for (owner, rule) in self.set.rules() {
            let idx = self.rules.len();
            match rule.subject().exact_key() {
                Some(key) => self.subject_index.entry(key).or_default().push(idx),
                None => self.unindexed.push(idx),
            }
            self.rules.push((owner.to_string(), rule.clone()));
        }
    }

    /// Total number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Notes an event for a rate key at `now_us` (drives `RateAtMost`
    /// conditions). Call once per observed event (e.g. per frame).
    pub fn observe_rate_event(&self, key: &str, now_us: u64) {
        self.rates.lock().observe(key, now_us);
    }

    /// Decides a request. The context's rate fields are filled from the
    /// engine's tracker before rule evaluation (caller-set rates for keys
    /// the tracker knows are overwritten).
    pub fn decide(&self, req: &AccessRequest, ctx: &EvalContext) -> Decision {
        self.decide_at(req, ctx, 0)
    }

    /// Decides a request at an explicit time (microseconds), which both
    /// timestamps the audit record and prunes rate windows.
    pub fn decide_at(&self, req: &AccessRequest, ctx: &EvalContext, now_us: u64) -> Decision {
        // Fill tracked rates into a working copy of the context.
        let mut ctx = ctx.clone();
        {
            let mut rates = self.rates.lock();
            for key in self.set.rate_keys() {
                let r = rates.rate(&key, now_us);
                ctx.set_rate(key, r);
            }
        }

        // Candidate rules: exact-subject index hits + unindexed, in
        // declaration order (merge preserves order because indices are
        // ascending within each source).
        let mut examined = 0u64;
        let decision = if self.indexing {
            let key = (
                req.subject().namespace().to_string(),
                req.subject().name().to_string(),
            );
            let indexed = self.subject_index.get(&key).map(|v| v.as_slice()).unwrap_or(&[]);
            let merged = merge_sorted(indexed, &self.unindexed);
            self.combine(req, &ctx, merged.iter().copied(), &mut examined)
        } else {
            self.combine(req, &ctx, 0..self.rules.len(), &mut examined)
        };

        {
            let mut stats = self.stats.write();
            stats.decisions += 1;
            stats.rules_examined += examined;
            match decision.effect {
                Effect::Allow => stats.allows += 1,
                Effect::Deny => stats.denies += 1,
            }
            if decision.rule.is_none() {
                stats.defaults += 1;
            }
        }
        self.audit
            .lock()
            .record(now_us, req.clone(), decision.effect, decision.rule.clone());
        decision
    }

    fn combine<I: Iterator<Item = usize>>(
        &self,
        req: &AccessRequest,
        ctx: &EvalContext,
        candidates: I,
        examined: &mut u64,
    ) -> Decision {
        match self.strategy {
            CombiningStrategy::FirstMatch => {
                for i in candidates {
                    *examined += 1;
                    let (owner, rule) = &self.rules[i];
                    if rule.applies(req, ctx) {
                        return Decision {
                            effect: rule.effect(),
                            rule: Some(format!("{owner}.{}", rule.id())),
                            reason: format!("first matching rule {}", rule.id()),
                        };
                    }
                }
                self.default_decision()
            }
            CombiningStrategy::DenyOverrides => {
                let mut allow: Option<(String, String)> = None;
                for i in candidates {
                    *examined += 1;
                    let (owner, rule) = &self.rules[i];
                    if rule.applies(req, ctx) {
                        if rule.effect() == Effect::Deny {
                            return Decision {
                                effect: Effect::Deny,
                                rule: Some(format!("{owner}.{}", rule.id())),
                                reason: format!("deny-overrides: rule {} denies", rule.id()),
                            };
                        }
                        if allow.is_none() {
                            allow = Some((owner.clone(), rule.id().to_string()));
                        }
                    }
                }
                match allow {
                    Some((owner, id)) => Decision {
                        effect: Effect::Allow,
                        rule: Some(format!("{owner}.{id}")),
                        reason: format!("allowed by rule {id}, no deny applies"),
                    },
                    None => self.default_decision(),
                }
            }
            CombiningStrategy::PriorityOrder => {
                let mut best: Option<(i32, Effect, String)> = None;
                for i in candidates {
                    *examined += 1;
                    let (owner, rule) = &self.rules[i];
                    if rule.applies(req, ctx) {
                        let key = format!("{owner}.{}", rule.id());
                        let candidate = (rule.priority(), rule.effect(), key);
                        best = Some(match best.take() {
                            None => candidate,
                            Some(cur) => {
                                let wins = candidate.0 > cur.0
                                    // priority tie: deny wins over allow
                                    || (candidate.0 == cur.0
                                        && candidate.1 == Effect::Deny
                                        && cur.1 == Effect::Allow);
                                if wins { candidate } else { cur }
                            }
                        });
                    }
                }
                match best {
                    Some((prio, effect, key)) => Decision {
                        effect,
                        rule: Some(key.clone()),
                        reason: format!("priority {prio} rule {key}"),
                    },
                    None => self.default_decision(),
                }
            }
        }
    }

    fn default_decision(&self) -> Decision {
        Decision {
            effect: self.default_effect,
            rule: None,
            reason: format!("no rule applies; default {}", self.default_effect),
        }
    }

    /// Snapshot of evaluation statistics.
    pub fn stats(&self) -> EngineStats {
        *self.stats.read()
    }

    /// Runs a closure over the audit log.
    pub fn with_audit<R>(&self, f: impl FnOnce(&AuditLog) -> R) -> R {
        f(&self.audit.lock())
    }
}

/// Merges two ascending index slices into one ascending vector.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionSet};
    use crate::condition::Condition;
    use crate::entity::{EntityId, EntityMatcher, Pattern};
    use crate::policy::Policy;

    fn allow_read(id: &str, asset: &str) -> Rule {
        Rule::new(
            id,
            Effect::Allow,
            ActionSet::only(Action::Read),
            EntityMatcher::new("entry", Pattern::Any),
            EntityMatcher::new("asset", Pattern::Exact(asset.into())),
        )
    }

    fn deny_write(id: &str, asset: &str) -> Rule {
        Rule::new(
            id,
            Effect::Deny,
            ActionSet::only(Action::Write),
            EntityMatcher::new("entry", Pattern::Any),
            EntityMatcher::new("asset", Pattern::Exact(asset.into())),
        )
    }

    fn req(subject: &str, object: &str, action: Action) -> AccessRequest {
        AccessRequest::new(
            EntityId::parse(subject).unwrap(),
            EntityId::parse(object).unwrap(),
            action,
        )
    }

    fn demo_engine(strategy: CombiningStrategy) -> PolicyEngine {
        let p = Policy::new("demo", 1)
            .add_rule(allow_read("r-read", "ecu"))
            .unwrap()
            .add_rule(deny_write("r-nowrite", "ecu"))
            .unwrap();
        PolicyEngine::from_policy(p).with_strategy(strategy)
    }

    #[test]
    fn default_deny_when_no_rule_applies() {
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        let d = e.decide(&req("entry:x", "asset:unknown", Action::Read), &EvalContext::new());
        assert_eq!(d.effect(), Effect::Deny);
        assert_eq!(d.rule(), None);
        assert!(d.reason().contains("default"));
    }

    #[test]
    fn allow_and_deny_paths() {
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        let ctx = EvalContext::new();
        assert!(e.decide(&req("entry:s", "asset:ecu", Action::Read), &ctx).is_allow());
        let d = e.decide(&req("entry:s", "asset:ecu", Action::Write), &ctx);
        assert_eq!(d.effect(), Effect::Deny);
        assert_eq!(d.rule(), Some("demo.r-nowrite"));
    }

    #[test]
    fn deny_overrides_beats_allow() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "allow-all",
                    Effect::Allow,
                    ActionSet::all(),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                ),
            )
            .unwrap()
            .add_rule(
                Rule::new(
                    "deny-ecu-write",
                    Effect::Deny,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::new("asset", Pattern::Exact("ecu".into())),
                ),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let ctx = EvalContext::new();
        assert!(e.decide(&req("entry:x", "asset:ecu", Action::Read), &ctx).is_allow());
        assert!(!e.decide(&req("entry:x", "asset:ecu", Action::Write), &ctx).is_allow());
    }

    #[test]
    fn first_match_order_matters() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "allow-first",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                ),
            )
            .unwrap()
            .add_rule(deny_write("deny-later", "ecu"))
            .unwrap();
        let e = PolicyEngine::from_policy(p).with_strategy(CombiningStrategy::FirstMatch);
        // first-match sees the allow first
        let d = e.decide(&req("entry:x", "asset:ecu", Action::Write), &EvalContext::new());
        assert!(d.is_allow());
        assert_eq!(d.rule(), Some("p.allow-first"));
    }

    #[test]
    fn priority_order_highest_wins_ties_deny() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "low-allow",
                    Effect::Allow,
                    ActionSet::only(Action::Read),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .with_priority(1),
            )
            .unwrap()
            .add_rule(
                Rule::new(
                    "high-deny",
                    Effect::Deny,
                    ActionSet::only(Action::Read),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .with_priority(10),
            )
            .unwrap()
            .add_rule(
                Rule::new(
                    "tie-allow",
                    Effect::Allow,
                    ActionSet::only(Action::Read),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .with_priority(10),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p).with_strategy(CombiningStrategy::PriorityOrder);
        let d = e.decide(&req("entry:x", "asset:y", Action::Read), &EvalContext::new());
        assert_eq!(d.effect(), Effect::Deny, "tie at priority 10 resolves to deny");
        assert_eq!(d.rule(), Some("p.high-deny"));
    }

    #[test]
    fn mode_conditions_gate_rules() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "diag-write",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::new("entry", Pattern::Exact("obd".into())),
                    EntityMatcher::new("asset", Pattern::Exact("ecu".into())),
                )
                .when(Condition::InMode("remote diagnostic".into())),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let r = req("entry:obd", "asset:ecu", Action::Write);
        assert!(!e.decide(&r, &EvalContext::new().with_mode("normal")).is_allow());
        assert!(e
            .decide(&r, &EvalContext::new().with_mode("remote diagnostic"))
            .is_allow());
    }

    #[test]
    fn rate_condition_with_tracker() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "rate-limited",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .when(Condition::RateAtMost { key: "w".into(), max_per_sec: 2 }),
            )
            .unwrap();
        let e = PolicyEngine::from_policy(p);
        let r = req("entry:x", "asset:y", Action::Write);
        let ctx = EvalContext::new();
        // two events within the window: still allowed
        e.observe_rate_event("w", 1_000);
        e.observe_rate_event("w", 2_000);
        assert!(e.decide_at(&r, &ctx, 3_000).is_allow());
        // third event pushes over the limit
        e.observe_rate_event("w", 3_000);
        assert!(!e.decide_at(&r, &ctx, 4_000).is_allow());
        // a second later the window has drained
        assert!(e.decide_at(&r, &ctx, 1_200_000).is_allow());
    }

    #[test]
    fn index_and_linear_agree() {
        // same decisions with indexing on and off
        let mut p = Policy::new("p", 1);
        for i in 0..50 {
            p = p
                .add_rule(
                    Rule::new(
                        format!("r{i}"),
                        if i % 3 == 0 { Effect::Deny } else { Effect::Allow },
                        ActionSet::only(Action::Read),
                        EntityMatcher::new("entry", Pattern::Exact(format!("s{i}"))),
                        EntityMatcher::anything(),
                    ),
                )
                .unwrap();
        }
        let set = PolicySet::from_policy(p);
        let indexed = PolicyEngine::new(set.clone());
        let linear = PolicyEngine::new(set).with_indexing(false);
        let ctx = EvalContext::new();
        for i in 0..50 {
            let r = req(&format!("entry:s{i}"), "asset:x", Action::Read);
            assert_eq!(
                indexed.decide(&r, &ctx).effect(),
                linear.decide(&r, &ctx).effect(),
                "rule {i}"
            );
        }
        // index examines far fewer rules
        assert!(indexed.stats().rules_examined < linear.stats().rules_examined / 10);
    }

    #[test]
    fn stats_and_audit_populate() {
        let e = demo_engine(CombiningStrategy::DenyOverrides);
        let ctx = EvalContext::new();
        e.decide(&req("entry:a", "asset:ecu", Action::Read), &ctx);
        e.decide(&req("entry:a", "asset:ecu", Action::Write), &ctx);
        let s = e.stats();
        assert_eq!(s.decisions, 2);
        assert_eq!(s.allows, 1);
        assert_eq!(s.denies, 1);
        e.with_audit(|log| {
            assert_eq!(log.len(), 2);
            assert_eq!(log.denies(), 1);
        });
    }

    #[test]
    fn reload_swaps_policies() {
        let mut e = demo_engine(CombiningStrategy::DenyOverrides);
        let r = req("entry:a", "asset:ecu", Action::Write);
        assert!(!e.decide(&r, &EvalContext::new()).is_allow());
        // new policy version allows writes
        let p2 = Policy::new("demo", 2)
            .add_rule(
                Rule::new(
                    "r-write",
                    Effect::Allow,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                ),
            )
            .unwrap();
        e.reload(PolicySet::from_policy(p2));
        assert!(e.decide(&r, &EvalContext::new()).is_allow());
        // audit survives the reload
        e.with_audit(|log| assert_eq!(log.len(), 2));
    }

    #[test]
    fn merge_sorted_interleaves() {
        assert_eq!(merge_sorted(&[1, 4, 6], &[2, 3, 5]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merge_sorted(&[], &[1]), vec![1]);
        assert_eq!(merge_sorted(&[1], &[]), vec![1]);
        assert_eq!(merge_sorted(&[], &[]), Vec::<usize>::new());
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PolicyEngine>();
    }

    #[test]
    fn strategy_display() {
        assert_eq!(CombiningStrategy::DenyOverrides.to_string(), "deny-overrides");
        assert_eq!(CombiningStrategy::FirstMatch.to_string(), "first-match");
        assert_eq!(CombiningStrategy::PriorityOrder.to_string(), "priority-order");
    }
}
