//! Error type for the policy crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by policy construction, parsing, compilation and updates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyError {
    /// An entity string was not of the form `namespace:name`.
    MalformedEntity {
        /// The offending input.
        input: String,
    },
    /// A numeric id range had `lo > hi` or unparsable bounds.
    MalformedRange {
        /// The offending input.
        input: String,
    },
    /// The DSL lexer met an unexpected character.
    Lex {
        /// Line number (1-based).
        line: u32,
        /// The unexpected character.
        found: char,
    },
    /// The DSL parser met an unexpected token.
    Parse {
        /// Line number (1-based).
        line: u32,
        /// What the parser expected.
        expected: String,
        /// What it found.
        found: String,
    },
    /// A policy declared two rules with the same id.
    DuplicateRule {
        /// The duplicated rule id.
        id: String,
    },
    /// A bundle signature did not verify.
    BadSignature,
    /// A bundle's version did not advance the store's version.
    StaleVersion {
        /// The store's current version.
        current: u64,
        /// The offered bundle's version.
        offered: u64,
    },
    /// Bundle payload failed to deserialise.
    MalformedBundle {
        /// Decoder detail.
        detail: String,
    },
    /// Rollback was requested with no previous version retained.
    NothingToRollBack,
    /// A strict-mode bundle load was vetoed by static analysis
    /// ([`PolicyEngine::load_bundle`](crate::PolicyEngine::load_bundle)
    /// with [`LoadMode::Strict`](crate::LoadMode::Strict)).
    AnalysisRejected {
        /// The validator's findings, rendered as text.
        detail: String,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::MalformedEntity { input } => {
                write!(f, "malformed entity '{input}' (expected namespace:name)")
            }
            PolicyError::MalformedRange { input } => {
                write!(f, "malformed id range '{input}' (expected 0xLO-0xHI with lo <= hi)")
            }
            PolicyError::Lex { line, found } => {
                write!(f, "line {line}: unexpected character '{found}'")
            }
            PolicyError::Parse { line, expected, found } => {
                write!(f, "line {line}: expected {expected}, found {found}")
            }
            PolicyError::DuplicateRule { id } => write!(f, "duplicate rule id '{id}'"),
            PolicyError::BadSignature => write!(f, "bundle signature verification failed"),
            PolicyError::StaleVersion { current, offered } => {
                write!(f, "bundle version {offered} does not advance current version {current}")
            }
            PolicyError::MalformedBundle { detail } => write!(f, "malformed bundle: {detail}"),
            PolicyError::NothingToRollBack => write!(f, "no previous policy version retained"),
            PolicyError::AnalysisRejected { detail } => {
                write!(f, "bundle rejected by static analysis: {detail}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_detail() {
        let e = PolicyError::Parse {
            line: 3,
            expected: "';'".into(),
            found: "'}'".into(),
        };
        assert_eq!(e.to_string(), "line 3: expected ';', found '}'");
        assert!(PolicyError::StaleVersion { current: 5, offered: 5 }
            .to_string()
            .contains("5"));
    }

    #[test]
    fn is_std_error() {
        fn takes<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes(PolicyError::BadSignature);
    }
}
