//! Global string interning.
//!
//! The decision fast path never touches owned strings: entity namespaces
//! and names, rule ids and operating modes are interned once — at parse,
//! construction or policy-load time — into [`Symbol`]s, 4-byte handles that
//! compare, hash and copy for free. Resolution back to `&'static str` is
//! lock-free: symbols index an append-only bucket table whose entries are
//! written exactly once.
//!
//! Interning a string that is already present takes a shared read lock on
//! the dedup map (uncontended in steady state); only genuinely new strings
//! take the write lock. Interned strings are leaked deliberately — the
//! table is global, append-only and bounded by the number of distinct
//! names the process ever sees, which for an embedded policy workload is
//! small and stable.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string handle: 4 bytes, `Copy`, O(1) equality and hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `s`, returning its stable handle. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        interner().intern(s)
    }

    /// The handle for `s` if it has ever been interned (read-only; never
    /// grows the table).
    pub fn try_get(s: &str) -> Option<Symbol> {
        interner().try_get(s)
    }

    /// Resolves the handle to its string. Lock-free.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self.0)
    }

    /// The raw index (used to pack cache keys).
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bucket `b` holds `32 << b` entries; bucket starts are contiguous, so
/// symbol `n` lives in bucket `ilog2((n + 32) / 32)` — resolution is pure
/// arithmetic plus two already-initialised reads.
const BUCKETS: usize = 26; // 32 << 25 ≈ 10^9 symbols, far beyond any workload

struct Interner {
    dedup: RwLock<HashMap<&'static str, u32>>,
    buckets: [OnceLock<Box<[OnceLock<&'static str>]>>; BUCKETS],
    len: RwLock<u32>,
}

fn locate(index: u32) -> (usize, usize) {
    let adjusted = index as usize + 32;
    let bucket = (usize::BITS - 1 - adjusted.leading_zeros()) as usize - 5;
    let start = (32usize << bucket) - 32;
    (bucket, adjusted - 32 - start)
}

impl Interner {
    fn new() -> Self {
        Interner {
            dedup: RwLock::new(HashMap::new()),
            buckets: [const { OnceLock::new() }; BUCKETS],
            len: RwLock::new(0),
        }
    }

    fn try_get(&self, s: &str) -> Option<Symbol> {
        self.dedup
            .read()
            .expect("interner dedup lock")
            .get(s)
            .copied()
            .map(Symbol)
    }

    fn intern(&self, s: &str) -> Symbol {
        if let Some(sym) = self.try_get(s) {
            return sym;
        }
        let mut dedup = self.dedup.write().expect("interner dedup lock");
        if let Some(&index) = dedup.get(s) {
            return Symbol(index);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let mut len = self.len.write().expect("interner len lock");
        let index = *len;
        let (bucket, slot) = locate(index);
        let storage = self.buckets[bucket].get_or_init(|| {
            (0..(32usize << bucket))
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        storage[slot].set(leaked).expect("fresh interner slot");
        *len = index + 1;
        dedup.insert(leaked, index);
        Symbol(index)
    }

    fn resolve(&self, index: u32) -> &'static str {
        let (bucket, slot) = locate(index);
        self.buckets[bucket]
            .get()
            .and_then(|b| b[slot].get())
            .copied()
            .expect("symbol resolved before interning")
    }
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(Interner::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let a = Symbol::intern("alpha-interner-test");
        let b = Symbol::intern("alpha-interner-test");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alpha-interner-test");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("intern-x");
        let b = Symbol::intern("intern-y");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "intern-x");
        assert_eq!(b.as_str(), "intern-y");
    }

    #[test]
    fn try_get_only_sees_interned() {
        assert!(Symbol::try_get("never-interned-sentinel-xyzzy").is_none());
        let s = Symbol::intern("interned-sentinel");
        assert_eq!(Symbol::try_get("interned-sentinel"), Some(s));
    }

    #[test]
    fn bucket_arithmetic_covers_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(31), (0, 31));
        assert_eq!(locate(32), (1, 0));
        assert_eq!(locate(95), (1, 63));
        assert_eq!(locate(96), (2, 0));
    }

    #[test]
    fn many_symbols_cross_buckets() {
        let syms: Vec<Symbol> = (0..300)
            .map(|i| Symbol::intern(&format!("bulk-intern-{i}")))
            .collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("bulk-intern-{i}"));
        }
    }

    #[test]
    fn display_matches_as_str() {
        let s = Symbol::intern("display-me");
        assert_eq!(s.to_string(), "display-me");
    }
}
