//! DSL lexer.

use crate::error::PolicyError;

/// A lexical token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An unquoted word: identifiers, numbers, patterns (`ev-ecu`,
    /// `0x100-0x1FF`, `sensor-*`, `*`, `5.4`).
    Word(String),
    /// A double-quoted string.
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `<=`
    Le,
}

impl TokenKind {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => format!("'{w}'"),
            TokenKind::Str(s) => format!("\"{s}\""),
            TokenKind::LBrace => "'{'".into(),
            TokenKind::RBrace => "'}'".into(),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::Semi => "';'".into(),
            TokenKind::Comma => "','".into(),
            TokenKind::Colon => "':'".into(),
            TokenKind::EqEq => "'=='".into(),
            TokenKind::NotEq => "'!='".into(),
            TokenKind::AndAnd => "'&&'".into(),
            TokenKind::OrOr => "'||'".into(),
            TokenKind::Bang => "'!'".into(),
            TokenKind::Le => "'<='".into(),
        }
    }
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '*')
}

/// Tokenizes DSL source.
///
/// # Errors
/// [`PolicyError::Lex`] on unexpected characters or unterminated strings.
pub fn tokenize(src: &str) -> Result<Vec<Token>, PolicyError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // comment to end of line
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(PolicyError::Lex { line, found: '/' });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut terminated = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        terminated = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !terminated {
                    return Err(PolicyError::Lex { line, found: '"' });
                }
                tokens.push(Token { kind: TokenKind::Str(s), line });
            }
            '{' => {
                chars.next();
                tokens.push(Token { kind: TokenKind::LBrace, line });
            }
            '}' => {
                chars.next();
                tokens.push(Token { kind: TokenKind::RBrace, line });
            }
            '(' => {
                chars.next();
                tokens.push(Token { kind: TokenKind::LParen, line });
            }
            ')' => {
                chars.next();
                tokens.push(Token { kind: TokenKind::RParen, line });
            }
            ';' => {
                chars.next();
                tokens.push(Token { kind: TokenKind::Semi, line });
            }
            ',' => {
                chars.next();
                tokens.push(Token { kind: TokenKind::Comma, line });
            }
            ':' => {
                chars.next();
                tokens.push(Token { kind: TokenKind::Colon, line });
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::EqEq, line });
                } else {
                    return Err(PolicyError::Lex { line, found: '=' });
                }
            }
            '&' => {
                chars.next();
                if chars.peek() == Some(&'&') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::AndAnd, line });
                } else {
                    return Err(PolicyError::Lex { line, found: '&' });
                }
            }
            '|' => {
                chars.next();
                if chars.peek() == Some(&'|') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::OrOr, line });
                } else {
                    return Err(PolicyError::Lex { line, found: '|' });
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::NotEq, line });
                } else {
                    tokens.push(Token { kind: TokenKind::Bang, line });
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::Le, line });
                } else {
                    return Err(PolicyError::Lex { line, found: '<' });
                }
            }
            c if is_word_char(c) => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if is_word_char(c) {
                        w.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token { kind: TokenKind::Word(w), line });
            }
            other => return Err(PolicyError::Lex { line, found: other }),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_symbols() {
        assert_eq!(
            kinds("allow read, write on asset:ev-ecu;"),
            vec![
                TokenKind::Word("allow".into()),
                TokenKind::Word("read".into()),
                TokenKind::Comma,
                TokenKind::Word("write".into()),
                TokenKind::Word("on".into()),
                TokenKind::Word("asset".into()),
                TokenKind::Colon,
                TokenKind::Word("ev-ecu".into()),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn patterns_lex_as_single_words() {
        assert_eq!(
            kinds("0x100-0x1FF sensor-* * state.vehicle.moving"),
            vec![
                TokenKind::Word("0x100-0x1FF".into()),
                TokenKind::Word("sensor-*".into()),
                TokenKind::Word("*".into()),
                TokenKind::Word("state.vehicle.moving".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== != && || ! <= ( )"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Le,
                TokenKind::LParen,
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn strings_and_comments() {
        assert_eq!(
            kinds("\"hello world\" # a comment\nallow // another\ndeny"),
            vec![
                TokenKind::Str("hello world".into()),
                TokenKind::Word("allow".into()),
                TokenKind::Word("deny".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn lex_errors_report_line_and_char() {
        let err = tokenize("ok\n$bad").unwrap_err();
        assert_eq!(err, PolicyError::Lex { line: 2, found: '$' });
        assert!(matches!(tokenize("= alone"), Err(PolicyError::Lex { found: '=', .. })));
        assert!(matches!(tokenize("& alone"), Err(PolicyError::Lex { found: '&', .. })));
        assert!(matches!(tokenize("| alone"), Err(PolicyError::Lex { found: '|', .. })));
        assert!(matches!(tokenize("< alone"), Err(PolicyError::Lex { found: '<', .. })));
        assert!(matches!(tokenize("/ alone"), Err(PolicyError::Lex { found: '/', .. })));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("\"oops"), Err(PolicyError::Lex { found: '"', .. })));
    }

    #[test]
    fn describe_is_quoted() {
        assert_eq!(TokenKind::Word("x".into()).describe(), "'x'");
        assert_eq!(TokenKind::Semi.describe(), "';'");
        assert_eq!(TokenKind::Str("s".into()).describe(), "\"s\"");
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n\t ").unwrap().is_empty());
        assert!(tokenize("# only a comment").unwrap().is_empty());
    }
}
