//! DSL recursive-descent parser.

use super::lexer::{tokenize, Token, TokenKind};
use crate::action::{Action, ActionSet};
use crate::condition::Condition;
use crate::entity::{EntityMatcher, Pattern};
use crate::error::PolicyError;
use crate::policy::{Effect, Policy, Rule};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    auto_rule_id: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            auto_rule_id: 0,
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn err(&self, expected: &str) -> PolicyError {
        PolicyError::Parse {
            line: self.line(),
            expected: expected.to_string(),
            found: self
                .peek()
                .map(|k| k.describe())
                .unwrap_or_else(|| "end of input".to_string()),
        }
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), PolicyError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), PolicyError> {
        match self.peek() {
            Some(TokenKind::Word(w)) if w == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("'{kw}'"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(TokenKind::Word(w)) if w == kw => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn word(&mut self, what: &str) -> Result<String, PolicyError> {
        match self.peek() {
            Some(TokenKind::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.err(what)),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, PolicyError> {
        match self.peek() {
            Some(TokenKind::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(what)),
        }
    }

    /// A value position accepts either a bare word or a quoted string.
    fn value(&mut self, what: &str) -> Result<String, PolicyError> {
        match self.peek() {
            Some(TokenKind::Word(_)) => self.word(what),
            Some(TokenKind::Str(_)) => self.string(what),
            _ => Err(self.err(what)),
        }
    }

    fn number_u64(&mut self, what: &str) -> Result<u64, PolicyError> {
        let line = self.line();
        let w = self.word(what)?;
        w.parse().map_err(|_| PolicyError::Parse {
            line,
            expected: what.to_string(),
            found: format!("'{w}'"),
        })
    }

    fn number_i32(&mut self, what: &str) -> Result<i32, PolicyError> {
        let line = self.line();
        let w = self.word(what)?;
        w.parse().map_err(|_| PolicyError::Parse {
            line,
            expected: what.to_string(),
            found: format!("'{w}'"),
        })
    }

    fn number_u32(&mut self, what: &str) -> Result<u32, PolicyError> {
        let line = self.line();
        let w = self.word(what)?;
        w.parse().map_err(|_| PolicyError::Parse {
            line,
            expected: what.to_string(),
            found: format!("'{w}'"),
        })
    }

    fn policy(&mut self) -> Result<Policy, PolicyError> {
        self.expect_keyword("policy")?;
        let name = self.string("policy name string")?;
        self.expect_keyword("version")?;
        let version = self.number_u64("version number")?;
        self.expect(&TokenKind::LBrace, "'{'")?;

        let mut policy = Policy::new(name, version);
        loop {
            match self.peek() {
                Some(TokenKind::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(TokenKind::Word(w)) if w == "default" => {
                    self.pos += 1;
                    let effect = self.effect()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    policy = policy.with_default(effect);
                }
                Some(TokenKind::Word(w)) if w == "allow" || w == "deny" => {
                    let rule = self.rule()?;
                    policy = policy.add_rule(rule)?;
                }
                _ => return Err(self.err("'default', 'allow', 'deny' or '}'")),
            }
        }
        Ok(policy)
    }

    fn effect(&mut self) -> Result<Effect, PolicyError> {
        if self.eat_keyword("allow") {
            Ok(Effect::Allow)
        } else if self.eat_keyword("deny") {
            Ok(Effect::Deny)
        } else {
            Err(self.err("'allow' or 'deny'"))
        }
    }

    fn rule(&mut self) -> Result<Rule, PolicyError> {
        let effect = self.effect()?;
        let actions = self.actions()?;
        self.expect_keyword("on")?;
        let object = self.entity()?;
        self.expect_keyword("from")?;
        let subject = self.entity()?;

        let mut condition = Condition::Always;
        if self.eat_keyword("when") {
            condition = self.cond_or()?;
        }
        let mut priority = 0;
        if self.eat_keyword("priority") {
            priority = self.number_i32("priority number")?;
        }
        let id = if self.eat_keyword("as") {
            self.word("rule id")?
        } else {
            self.auto_rule_id += 1;
            format!("r{}", self.auto_rule_id)
        };
        self.expect(&TokenKind::Semi, "';'")?;
        Ok(Rule::new(id, effect, actions, subject, object)
            .when(condition)
            .with_priority(priority))
    }

    fn actions(&mut self) -> Result<ActionSet, PolicyError> {
        let mut set = ActionSet::EMPTY;
        loop {
            let line = self.line();
            let w = self.word("action keyword")?;
            let action: Action = w.parse().map_err(|_| PolicyError::Parse {
                line,
                expected: "action (read/write/execute/configure)".into(),
                found: format!("'{w}'"),
            })?;
            set.insert(action);
            if self.peek() == Some(&TokenKind::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(set)
    }

    fn entity(&mut self) -> Result<EntityMatcher, PolicyError> {
        let ns = self.word("entity namespace")?;
        self.expect(&TokenKind::Colon, "':'")?;
        let line = self.line();
        let pat_word = self.word("entity pattern")?;
        let pattern = Pattern::parse(&pat_word).map_err(|e| PolicyError::Parse {
            line,
            expected: "entity pattern".into(),
            found: e.to_string(),
        })?;
        if ns == "*" {
            Ok(EntityMatcher::any_namespace(pattern))
        } else {
            Ok(EntityMatcher::new(ns, pattern))
        }
    }

    fn cond_or(&mut self) -> Result<Condition, PolicyError> {
        let first = self.cond_and()?;
        let mut parts = vec![first];
        while self.peek() == Some(&TokenKind::OrOr) {
            self.pos += 1;
            parts.push(self.cond_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Condition::AnyOf(parts)
        })
    }

    fn cond_and(&mut self) -> Result<Condition, PolicyError> {
        let first = self.cond_not()?;
        let mut parts = vec![first];
        while self.peek() == Some(&TokenKind::AndAnd) {
            self.pos += 1;
            parts.push(self.cond_not()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Condition::All(parts)
        })
    }

    fn cond_not(&mut self) -> Result<Condition, PolicyError> {
        if self.peek() == Some(&TokenKind::Bang) {
            self.pos += 1;
            return Ok(Condition::Not(Box::new(self.cond_not()?)));
        }
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            let inner = self.cond_or()?;
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(inner);
        }
        self.cond_atom()
    }

    fn cond_atom(&mut self) -> Result<Condition, PolicyError> {
        let w = self.word("condition")?;
        if w == "true" {
            return Ok(Condition::Always);
        }
        if w == "mode" {
            let negated = match self.next() {
                Some(TokenKind::EqEq) => false,
                Some(TokenKind::NotEq) => true,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("'==' or '!='"));
                }
            };
            let mode = self.value("mode name")?;
            let cond = Condition::InMode(mode);
            return Ok(if negated { Condition::Not(Box::new(cond)) } else { cond });
        }
        if let Some(key) = w.strip_prefix("state.") {
            let key = key.to_string();
            let negated = match self.next() {
                Some(TokenKind::EqEq) => false,
                Some(TokenKind::NotEq) => true,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("'==' or '!='"));
                }
            };
            let value = self.value("state value")?;
            let cond = Condition::StateEquals { key, value };
            return Ok(if negated { Condition::Not(Box::new(cond)) } else { cond });
        }
        if w == "rate" {
            self.expect(&TokenKind::LParen, "'('")?;
            let key = self.word("rate key")?;
            self.expect(&TokenKind::RParen, "')'")?;
            self.expect(&TokenKind::Le, "'<='")?;
            let max = self.number_u32("rate limit")?;
            return Ok(Condition::RateAtMost { key, max_per_sec: max });
        }
        self.pos = self.pos.saturating_sub(1);
        Err(self.err("'true', 'mode', 'state.<key>' or 'rate'"))
    }
}

/// Parses a single `policy` block.
///
/// # Errors
/// [`PolicyError::Lex`] / [`PolicyError::Parse`] with 1-based line numbers;
/// [`PolicyError::DuplicateRule`] for repeated `as` ids.
pub fn parse_policy(src: &str) -> Result<Policy, PolicyError> {
    let mut p = Parser::new(tokenize(src)?);
    let policy = p.policy()?;
    if p.peek().is_some() {
        return Err(p.err("end of input"));
    }
    Ok(policy)
}

/// Parses a file containing zero or more `policy` blocks.
///
/// # Errors
/// As [`parse_policy`].
pub fn parse_policies(src: &str) -> Result<Vec<Policy>, PolicyError> {
    let mut p = Parser::new(tokenize(src)?);
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.policy()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::Pattern;

    #[test]
    fn minimal_policy() {
        let p = parse_policy("policy \"empty\" version 1 { }").unwrap();
        assert_eq!(p.name(), "empty");
        assert_eq!(p.version(), 1);
        assert!(p.is_empty());
        assert_eq!(p.default_effect(), Effect::Deny);
    }

    #[test]
    fn default_allow() {
        let p = parse_policy("policy \"open\" version 1 { default allow; }").unwrap();
        assert_eq!(p.default_effect(), Effect::Allow);
    }

    #[test]
    fn full_rule() {
        let p = parse_policy(
            r#"policy "p" version 2 {
                allow read, write on asset:ev-ecu from entry:sensor-*
                    when mode == normal && rate(sensors) <= 10
                    priority 7 as main-rule;
            }"#,
        )
        .unwrap();
        let r = &p.rules()[0];
        assert_eq!(r.id(), "main-rule");
        assert_eq!(r.effect(), Effect::Allow);
        assert!(r.actions().contains(Action::Read));
        assert!(r.actions().contains(Action::Write));
        assert_eq!(r.priority(), 7);
        assert_eq!(r.object().to_string(), "asset:ev-ecu");
        assert_eq!(r.subject().pattern(), &Pattern::Prefix("sensor-".into()));
        assert_eq!(
            r.condition(),
            &Condition::All(vec![
                Condition::InMode("normal".into()),
                Condition::RateAtMost { key: "sensors".into(), max_per_sec: 10 },
            ])
        );
    }

    #[test]
    fn auto_rule_ids_increment() {
        let p = parse_policy(
            r#"policy "p" version 1 {
                allow read on a:b from c:d;
                deny write on a:b from c:d;
            }"#,
        )
        .unwrap();
        assert_eq!(p.rules()[0].id(), "r1");
        assert_eq!(p.rules()[1].id(), "r2");
    }

    #[test]
    fn id_ranges_and_wildcards() {
        let p = parse_policy(
            r#"policy "p" version 1 {
                deny write on can:0x100-0x1FF from *:*;
            }"#,
        )
        .unwrap();
        let r = &p.rules()[0];
        assert_eq!(r.object().pattern(), &Pattern::IdRange { lo: 0x100, hi: 0x1FF });
        assert_eq!(r.subject().namespace(), None);
    }

    #[test]
    fn condition_precedence_and_parens() {
        let p = parse_policy(
            r#"policy "p" version 1 {
                allow read on a:b from c:d when mode == x || mode == y && mode == z;
                allow write on a:b from c:d when (mode == x || mode == y) && mode == z;
            }"#,
        )
        .unwrap();
        // && binds tighter than ||
        assert_eq!(
            p.rules()[0].condition(),
            &Condition::AnyOf(vec![
                Condition::InMode("x".into()),
                Condition::All(vec![
                    Condition::InMode("y".into()),
                    Condition::InMode("z".into())
                ]),
            ])
        );
        assert_eq!(
            p.rules()[1].condition(),
            &Condition::All(vec![
                Condition::AnyOf(vec![
                    Condition::InMode("x".into()),
                    Condition::InMode("y".into())
                ]),
                Condition::InMode("z".into()),
            ])
        );
    }

    #[test]
    fn negation_and_inequality() {
        let p = parse_policy(
            r#"policy "p" version 1 {
                allow read on a:b from c:d when !(mode == x);
                allow write on a:b from c:d when mode != x;
                allow execute on a:b from c:d when state.doors != locked;
            }"#,
        )
        .unwrap();
        let not_x = Condition::Not(Box::new(Condition::InMode("x".into())));
        assert_eq!(p.rules()[0].condition(), &not_x);
        assert_eq!(p.rules()[1].condition(), &not_x);
        assert_eq!(
            p.rules()[2].condition(),
            &Condition::Not(Box::new(Condition::StateEquals {
                key: "doors".into(),
                value: "locked".into()
            }))
        );
    }

    #[test]
    fn quoted_mode_values() {
        let p = parse_policy(
            r#"policy "p" version 1 {
                allow read on a:b from c:d when mode == "remote diagnostic";
            }"#,
        )
        .unwrap();
        assert_eq!(
            p.rules()[0].condition(),
            &Condition::InMode("remote diagnostic".into())
        );
    }

    #[test]
    fn state_conditions() {
        let p = parse_policy(
            r#"policy "p" version 1 {
                deny write on asset:door-locks from entry:telematics
                    when state.vehicle.moving == true;
            }"#,
        )
        .unwrap();
        assert_eq!(
            p.rules()[0].condition(),
            &Condition::StateEquals { key: "vehicle.moving".into(), value: "true".into() }
        );
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_policy("policy \"p\" version 1 {\n  allow fly on a:b from c:d;\n}")
            .unwrap_err();
        match err {
            PolicyError::Parse { line, expected, found } => {
                assert_eq!(line, 2);
                assert!(expected.contains("action"));
                assert_eq!(found, "'fly'");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_semicolon_reported() {
        let err = parse_policy("policy \"p\" version 1 { allow read on a:b from c:d }")
            .unwrap_err();
        assert!(matches!(err, PolicyError::Parse { .. }));
        assert!(err.to_string().contains("';'"));
    }

    #[test]
    fn duplicate_as_ids_rejected() {
        let err = parse_policy(
            r#"policy "p" version 1 {
                allow read on a:b from c:d as dup;
                deny read on a:b from c:d as dup;
            }"#,
        )
        .unwrap_err();
        assert_eq!(err, PolicyError::DuplicateRule { id: "dup".into() });
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_policy("policy \"p\" version 1 { } trailing").unwrap_err();
        assert!(err.to_string().contains("end of input"));
    }

    #[test]
    fn multiple_policies() {
        let ps = parse_policies(
            r#"
            policy "a" version 1 { }
            policy "b" version 2 { default allow; }
            "#,
        )
        .unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].name(), "a");
        assert_eq!(ps[1].default_effect(), Effect::Allow);
        assert!(parse_policies("").unwrap().is_empty());
    }

    #[test]
    fn rate_condition_parses() {
        let p = parse_policy(
            r#"policy "p" version 1 {
                deny write on a:b from c:d when !(rate(flood) <= 100);
            }"#,
        )
        .unwrap();
        assert_eq!(
            p.rules()[0].condition(),
            &Condition::Not(Box::new(Condition::RateAtMost {
                key: "flood".into(),
                max_per_sec: 100
            }))
        );
    }
}
