//! The textual policy language.
//!
//! A small, readable DSL so policies can be written, reviewed and shipped as
//! text — the form an OEM security team would actually author. Grammar:
//!
//! ```text
//! policy   := "policy" STRING "version" NUMBER "{" stmt* "}"
//! stmt     := "default" ("allow" | "deny") ";"
//!           | ("allow" | "deny") actions "on" entity "from" entity
//!             ["when" cond] ["priority" NUMBER] ["as" IDENT] ";"
//! actions  := action ("," action)*          // read, write, execute, configure
//! entity   := (IDENT | "*") ":" pattern     // asset:ev-ecu, can:0x100-0x1FF,
//!                                           // entry:sensor-*, *:*
//! cond     := or ; or := and ("||" and)* ; and := not ("&&" not)*
//! not      := "!" not | "(" cond ")" | atom
//! atom     := "true"
//!           | "mode" ("==" | "!=") value
//!           | "state" "." IDENT ("==" | "!=") value
//!           | "rate" "(" IDENT ")" "<=" NUMBER
//! value    := IDENT | STRING
//! ```
//!
//! Comments run from `#` or `//` to end of line. [`print_policy`] emits the
//! canonical form, and `parse(print(p)) == p` holds for every policy (a
//! property test in the suite).
//!
//! # Example
//!
//! ```
//! use polsec_core::dsl::{parse_policy, print_policy};
//!
//! let text = r#"
//! policy "door-locks" version 2 {
//!     default deny;
//!     // locks may only be written by the safety-critical system during an accident
//!     allow write on asset:door-locks from entry:safety-critical
//!         when mode == fail-safe as unlock-on-crash;
//!     deny write on asset:door-locks from entry:telematics
//!         when state.vehicle.moving == true priority 10 as no-remote-unlock;
//! }
//! "#;
//! let policy = parse_policy(text)?;
//! assert_eq!(policy.name(), "door-locks");
//! assert_eq!(policy.len(), 2);
//! let canonical = print_policy(&policy);
//! assert_eq!(parse_policy(&canonical)?, policy);
//! # Ok::<(), polsec_core::PolicyError>(())
//! ```

mod lexer;
mod parser;
mod printer;

pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse_policies, parse_policy};
pub use printer::{print_condition, print_policy, print_rule};
