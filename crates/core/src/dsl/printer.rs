//! Canonical DSL printer.
//!
//! Prints policies in the exact surface syntax [`super::parse_policy`]
//! accepts, so `parse(print(p)) == p`. Rule ids are always emitted (`as id`)
//! to make the round trip lossless.

use crate::condition::Condition;
use crate::policy::{Policy, Rule};

fn needs_quoting(value: &str) -> bool {
    value.is_empty()
        || !value
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '*'))
}

fn print_value(value: &str) -> String {
    if needs_quoting(value) {
        format!("\"{value}\"")
    } else {
        value.to_string()
    }
}

/// Prints a condition in parseable syntax.
pub fn print_condition(c: &Condition) -> String {
    match c {
        Condition::Always => "true".to_string(),
        Condition::InMode(m) => format!("mode == {}", print_value(m)),
        Condition::StateEquals { key, value } => {
            format!("state.{key} == {}", print_value(value))
        }
        Condition::RateAtMost { key, max_per_sec } => format!("rate({key}) <= {max_per_sec}"),
        Condition::All(cs) => cs
            .iter()
            .map(print_grouped)
            .collect::<Vec<_>>()
            .join(" && "),
        Condition::AnyOf(cs) => cs
            .iter()
            .map(print_grouped)
            .collect::<Vec<_>>()
            .join(" || "),
        Condition::Not(inner) => format!("!({})", print_condition(inner)),
    }
}

/// Wraps composite sub-conditions in parentheses so precedence survives the
/// round trip.
fn print_grouped(c: &Condition) -> String {
    match c {
        Condition::All(_) | Condition::AnyOf(_) => format!("({})", print_condition(c)),
        _ => print_condition(c),
    }
}

/// Prints one rule as a statement (with trailing `;`).
pub fn print_rule(r: &Rule) -> String {
    let actions: Vec<String> = r.actions().iter().map(|a| a.to_string()).collect();
    let mut out = format!(
        "{} {} on {} from {}",
        r.effect(),
        actions.join(", "),
        r.object(),
        r.subject()
    );
    if r.condition() != &Condition::Always {
        out.push_str(&format!(" when {}", print_condition(r.condition())));
    }
    if r.priority() != 0 {
        out.push_str(&format!(" priority {}", r.priority()));
    }
    out.push_str(&format!(" as {};", r.id()));
    out
}

/// Prints a policy block in canonical form.
pub fn print_policy(p: &Policy) -> String {
    let mut out = format!("policy \"{}\" version {} {{\n", p.name(), p.version());
    out.push_str(&format!("    default {};\n", p.default_effect()));
    for r in p.rules() {
        out.push_str(&format!("    {}\n", print_rule(r)));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionSet};
    use crate::dsl::parse_policy;
    use crate::entity::{EntityMatcher, Pattern};
    use crate::policy::Effect;

    fn sample_policy() -> Policy {
        Policy::new("sample", 4)
            .with_default(Effect::Deny)
            .add_rule(
                Rule::new(
                    "allow-read",
                    Effect::Allow,
                    ActionSet::of(&[Action::Read, Action::Write]),
                    EntityMatcher::new("entry", Pattern::Prefix("sensor-".into())),
                    EntityMatcher::new("asset", Pattern::Exact("ev-ecu".into())),
                )
                .when(
                    Condition::InMode("normal".into())
                        .and(Condition::RateAtMost { key: "s".into(), max_per_sec: 3 }),
                )
                .with_priority(2),
            )
            .unwrap()
            .add_rule(
                Rule::new(
                    "deny-range",
                    Effect::Deny,
                    ActionSet::only(Action::Write),
                    EntityMatcher::anything(),
                    EntityMatcher::new("can", Pattern::IdRange { lo: 0x100, hi: 0x1FF }),
                ),
            )
            .unwrap()
    }

    #[test]
    fn round_trip_sample() {
        let p = sample_policy();
        let text = print_policy(&p);
        let back = parse_policy(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn quoting_rules() {
        assert_eq!(print_value("normal"), "normal");
        assert_eq!(print_value("remote diagnostic"), "\"remote diagnostic\"");
        assert_eq!(print_value(""), "\"\"");
        assert_eq!(print_value("0x100-0x1FF"), "0x100-0x1FF");
    }

    #[test]
    fn quoted_mode_round_trips() {
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "r",
                    Effect::Allow,
                    ActionSet::only(Action::Read),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .when(Condition::InMode("remote diagnostic".into())),
            )
            .unwrap();
        let back = parse_policy(&print_policy(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn nested_conditions_round_trip() {
        let cond = Condition::AnyOf(vec![
            Condition::All(vec![
                Condition::InMode("a".into()),
                Condition::Not(Box::new(Condition::InMode("b".into()))),
            ]),
            Condition::StateEquals { key: "k.x".into(), value: "v".into() },
        ]);
        let p = Policy::new("p", 1)
            .add_rule(
                Rule::new(
                    "r",
                    Effect::Deny,
                    ActionSet::all(),
                    EntityMatcher::anything(),
                    EntityMatcher::anything(),
                )
                .when(cond),
            )
            .unwrap();
        let back = parse_policy(&print_policy(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn print_rule_omits_trivial_parts() {
        let r = Rule::new(
            "basic",
            Effect::Allow,
            ActionSet::only(Action::Read),
            EntityMatcher::anything(),
            EntityMatcher::anything(),
        );
        let text = print_rule(&r);
        assert_eq!(text, "allow read on *:* from *:* as basic;");
        assert!(!text.contains("when"));
        assert!(!text.contains("priority"));
    }

    #[test]
    fn print_condition_forms() {
        assert_eq!(print_condition(&Condition::Always), "true");
        assert_eq!(
            print_condition(&Condition::RateAtMost { key: "k".into(), max_per_sec: 5 }),
            "rate(k) <= 5"
        );
        assert_eq!(
            print_condition(&Condition::Not(Box::new(Condition::Always))),
            "!(true)"
        );
    }
}
