//! Compiling threat-model output into enforceable policies.
//!
//! This is the bridge Fig. 1 draws between the two swim lanes: "the device
//! security model is a task … that can be defined as access control
//! policies". [`compile_security_model`] takes the [`SecurityModel`]
//! produced by `polsec-model`'s pipeline and emits one [`Policy`] whose
//! rules realise every derived [`PolicySpec`]:
//!
//! * a permission hint of `R` becomes an **allow read + deny write** pair
//!   scoped to the threat's entry points (and symmetrically for `W`; `RW`
//!   allows both),
//! * mode lists become [`Condition::InMode`] guards,
//! * the policy defaults to deny (least privilege, per the paper's §V.B).

use crate::action::{Action, ActionSet};
use crate::condition::Condition;
use crate::entity::{EntityMatcher, Pattern};
use crate::error::PolicyError;
use crate::policy::{Effect, Policy, Rule};
use polsec_model::{PermissionHint, PolicySpec, SecurityModel};

/// Namespace used for entry-point subjects.
pub const ENTRY_NS: &str = "entry";
/// Namespace used for asset objects.
pub const ASSET_NS: &str = "asset";

/// Compiles one [`PolicySpec`] into rules, appending them to `policy`.
///
/// Rule ids are derived from `tag` (unique per spec).
fn compile_spec(policy: Policy, spec: &PolicySpec, tag: &str) -> Result<Policy, PolicyError> {
    let object = EntityMatcher::new(ASSET_NS, Pattern::Exact(spec.asset.as_str().to_string()));
    let condition = mode_condition(spec);

    let (allowed, denied): (Vec<Action>, Vec<Action>) = match spec.permission {
        PermissionHint::Read => (vec![Action::Read], vec![Action::Write]),
        PermissionHint::Write => (vec![Action::Write], vec![Action::Read]),
        PermissionHint::ReadWrite => (vec![Action::Read, Action::Write], vec![]),
    };

    let mut policy = policy;
    for (i, ep) in spec.entry_points.iter().enumerate() {
        let subject = EntityMatcher::new(ENTRY_NS, Pattern::Exact(ep.as_str().to_string()));
        if !allowed.is_empty() {
            policy = policy.add_rule(
                Rule::new(
                    format!("{tag}-ep{i}-allow"),
                    Effect::Allow,
                    ActionSet::of(&allowed),
                    subject.clone(),
                    object.clone(),
                )
                .when(condition.clone()),
            )?;
        }
        if !denied.is_empty() {
            policy = policy.add_rule(
                Rule::new(
                    format!("{tag}-ep{i}-deny"),
                    Effect::Deny,
                    ActionSet::of(&denied),
                    subject,
                    object.clone(),
                )
                .when(condition.clone()),
            )?;
        }
    }
    Ok(policy)
}

fn mode_condition(spec: &PolicySpec) -> Condition {
    match spec.modes.len() {
        0 => Condition::Always,
        1 => Condition::InMode(spec.modes[0].name().to_string()),
        _ => Condition::AnyOf(
            spec.modes
                .iter()
                .map(|m| Condition::InMode(m.name().to_string()))
                .collect(),
        ),
    }
}

/// Compiles every policy spec in a security model into one deny-by-default
/// [`Policy`].
///
/// # Errors
/// [`PolicyError::DuplicateRule`] only if two specs generate colliding rule
/// ids, which cannot happen for distinct spec indices.
///
/// # Example
/// ```
/// use polsec_core::compile_security_model;
/// use polsec_model::{Asset, Criticality, DreadScore, EntryPoint, InterfaceKind,
///                    PermissionHint, Threat, ThreatModelPipeline, UseCase};
///
/// let uc = UseCase::builder("demo")
///     .asset(Asset::new("ecu", "ECU", Criticality::High))
///     .entry_point(EntryPoint::new("can", "CAN", InterfaceKind::Bus))
///     .mode("normal")
///     .threat(
///         Threat::builder("t", "spoof")
///             .asset("ecu")
///             .entry_point("can")
///             .dread(DreadScore::new(5, 5, 5, 5, 5)?)
///             .mode("normal")
///             .policy(PermissionHint::Read)
///             .build(),
///     )
///     .build()?;
/// let model = ThreatModelPipeline::new().run(&uc);
/// let policy = compile_security_model(&model, "demo-policy", 1)?;
/// assert_eq!(policy.len(), 2); // allow-read + deny-write
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile_security_model(
    model: &SecurityModel,
    name: &str,
    version: u64,
) -> Result<Policy, PolicyError> {
    compile_specs(&model.policy_specs(), name, version)
}

/// Compiles a list of policy specs directly.
///
/// # Errors
/// See [`compile_security_model`].
pub fn compile_specs(
    specs: &[&PolicySpec],
    name: &str,
    version: u64,
) -> Result<Policy, PolicyError> {
    let mut policy = Policy::new(name, version).with_default(Effect::Deny);
    for (i, spec) in specs.iter().enumerate() {
        policy = compile_spec(policy, spec, &format!("s{i}"))?;
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PolicyEngine;
    use crate::entity::EntityId;
    use crate::request::{AccessRequest, EvalContext};
    use polsec_model::{
        Asset, Criticality, DreadScore, EntryPoint, InterfaceKind, OperatingMode,
        ThreatModelPipeline, UseCase,
    };
    use polsec_model::{AssetId, EntryPointId, Threat};

    fn spec(permission: PermissionHint, modes: &[&str]) -> PolicySpec {
        PolicySpec {
            asset: AssetId::new("ev-ecu"),
            entry_points: vec![EntryPointId::new("sensors"), EntryPointId::new("locks")],
            permission,
            modes: modes.iter().map(OperatingMode::new).collect(),
            rationale: "test".into(),
        }
    }

    fn request(subject: &str, action: Action) -> AccessRequest {
        AccessRequest::new(
            EntityId::new(ENTRY_NS, subject),
            EntityId::new(ASSET_NS, "ev-ecu"),
            action,
        )
    }

    #[test]
    fn read_hint_allows_read_denies_write() {
        let s = spec(PermissionHint::Read, &[]);
        let p = compile_specs(&[&s], "p", 1).unwrap();
        assert_eq!(p.len(), 4, "2 entry points × (allow + deny)");
        let e = PolicyEngine::from_policy(p);
        let ctx = EvalContext::new();
        assert!(e.decide(&request("sensors", Action::Read), &ctx).is_allow());
        assert!(!e.decide(&request("sensors", Action::Write), &ctx).is_allow());
        assert!(e.decide(&request("locks", Action::Read), &ctx).is_allow());
    }

    #[test]
    fn write_hint_is_symmetric() {
        let s = spec(PermissionHint::Write, &[]);
        let e = PolicyEngine::from_policy(compile_specs(&[&s], "p", 1).unwrap());
        let ctx = EvalContext::new();
        assert!(e.decide(&request("sensors", Action::Write), &ctx).is_allow());
        assert!(!e.decide(&request("sensors", Action::Read), &ctx).is_allow());
    }

    #[test]
    fn rw_hint_allows_both_no_deny_rules() {
        let s = spec(PermissionHint::ReadWrite, &[]);
        let p = compile_specs(&[&s], "p", 1).unwrap();
        assert_eq!(p.len(), 2, "no deny rules for RW");
        let e = PolicyEngine::from_policy(p);
        let ctx = EvalContext::new();
        assert!(e.decide(&request("sensors", Action::Read), &ctx).is_allow());
        assert!(e.decide(&request("sensors", Action::Write), &ctx).is_allow());
    }

    #[test]
    fn unlisted_entry_point_falls_to_default_deny() {
        let s = spec(PermissionHint::ReadWrite, &[]);
        let e = PolicyEngine::from_policy(compile_specs(&[&s], "p", 1).unwrap());
        assert!(!e
            .decide(&request("telematics", Action::Read), &EvalContext::new())
            .is_allow());
    }

    #[test]
    fn single_mode_becomes_in_mode_guard() {
        let s = spec(PermissionHint::Read, &["normal"]);
        let e = PolicyEngine::from_policy(compile_specs(&[&s], "p", 1).unwrap());
        let r = request("sensors", Action::Read);
        assert!(e.decide(&r, &EvalContext::new().with_mode("normal")).is_allow());
        assert!(!e.decide(&r, &EvalContext::new().with_mode("fail-safe")).is_allow());
        assert!(!e.decide(&r, &EvalContext::new()).is_allow(), "no mode set");
    }

    #[test]
    fn multiple_modes_become_any_of() {
        let s = spec(PermissionHint::Read, &["normal", "fail-safe"]);
        let e = PolicyEngine::from_policy(compile_specs(&[&s], "p", 1).unwrap());
        let r = request("sensors", Action::Read);
        assert!(e.decide(&r, &EvalContext::new().with_mode("normal")).is_allow());
        assert!(e.decide(&r, &EvalContext::new().with_mode("fail-safe")).is_allow());
        assert!(!e
            .decide(&r, &EvalContext::new().with_mode("remote diagnostic"))
            .is_allow());
    }

    #[test]
    fn full_pipeline_to_engine() {
        let uc = UseCase::builder("car")
            .asset(Asset::new("ev-ecu", "EV-ECU", Criticality::SafetyCritical))
            .entry_point(EntryPoint::new("sensors", "Sensors", InterfaceKind::Sensor))
            .mode("normal")
            .threat(
                Threat::builder("t1", "Spoofed data over CANbus")
                    .asset("ev-ecu")
                    .entry_point("sensors")
                    .stride("STD".parse().unwrap())
                    .dread(DreadScore::new(8, 5, 4, 6, 4).unwrap())
                    .mode("normal")
                    .policy(PermissionHint::Read)
                    .build(),
            )
            .build()
            .unwrap();
        let model = ThreatModelPipeline::new().run(&uc);
        let policy = compile_security_model(&model, "car-policy", 1).unwrap();
        let engine = PolicyEngine::from_policy(policy);
        let ctx = EvalContext::new().with_mode("normal");
        assert!(engine.decide(&request("sensors", Action::Read), &ctx).is_allow());
        assert!(!engine.decide(&request("sensors", Action::Write), &ctx).is_allow());
    }

    #[test]
    fn distinct_specs_get_distinct_rule_ids() {
        let a = spec(PermissionHint::Read, &[]);
        let b = spec(PermissionHint::Write, &[]);
        let p = compile_specs(&[&a, &b], "p", 1).unwrap();
        assert_eq!(p.len(), 8);
        let mut ids: Vec<&str> = p.rules().iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }
}
