//! Access actions.
//!
//! The paper's Table I derives read/write permissions; the engine also
//! supports execute (for the infotainment privilege-escalation scenarios)
//! and configure (for filter/policy reconfiguration attempts).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One access verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Read data from the object.
    Read,
    /// Write data to the object.
    Write,
    /// Execute/install code on the object.
    Execute,
    /// Reconfigure the object (filters, policies, firmware).
    Configure,
}

impl Action {
    /// All actions in canonical order.
    pub const ALL: [Action; 4] = [Action::Read, Action::Write, Action::Execute, Action::Configure];

    /// The action's lowercase keyword as used in the DSL.
    pub fn keyword(self) -> &'static str {
        match self {
            Action::Read => "read",
            Action::Write => "write",
            Action::Execute => "execute",
            Action::Configure => "configure",
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl FromStr for Action {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "read" | "r" => Ok(Action::Read),
            "write" | "w" => Ok(Action::Write),
            "execute" | "x" => Ok(Action::Execute),
            "configure" | "cfg" => Ok(Action::Configure),
            other => Err(format!("unknown action '{other}'")),
        }
    }
}

/// A set of actions (compact bitset).
///
/// # Example
/// ```
/// use polsec_core::{Action, ActionSet};
/// let rw = ActionSet::of(&[Action::Read, Action::Write]);
/// assert!(rw.contains(Action::Read));
/// assert!(!rw.contains(Action::Execute));
/// assert_eq!(rw.to_string(), "read, write");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ActionSet {
    bits: u8,
}

impl ActionSet {
    /// The empty set.
    pub const EMPTY: ActionSet = ActionSet { bits: 0 };

    fn bit(a: Action) -> u8 {
        match a {
            Action::Read => 1 << 0,
            Action::Write => 1 << 1,
            Action::Execute => 1 << 2,
            Action::Configure => 1 << 3,
        }
    }

    /// A set with every action.
    pub fn all() -> Self {
        ActionSet { bits: 0b1111 }
    }

    /// A set with one action.
    pub fn only(a: Action) -> Self {
        ActionSet { bits: Self::bit(a) }
    }

    /// A set from a slice of actions.
    pub fn of(actions: &[Action]) -> Self {
        let mut s = ActionSet::EMPTY;
        for &a in actions {
            s.insert(a);
        }
        s
    }

    /// Adds an action.
    pub fn insert(&mut self, a: Action) {
        self.bits |= Self::bit(a);
    }

    /// Removes an action.
    pub fn remove(&mut self, a: Action) {
        self.bits &= !Self::bit(a);
    }

    /// Whether `a` is in the set.
    pub fn contains(self, a: Action) -> bool {
        self.bits & Self::bit(a) != 0
    }

    /// Number of actions present.
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Set union.
    pub fn union(self, other: ActionSet) -> ActionSet {
        ActionSet { bits: self.bits | other.bits }
    }

    /// Iterates actions in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Action> {
        Action::ALL.into_iter().filter(move |a| self.contains(*a))
    }
}

impl fmt::Display for ActionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for a in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Action> for ActionSet {
    fn from_iter<T: IntoIterator<Item = Action>>(iter: T) -> Self {
        let mut s = ActionSet::EMPTY;
        for a in iter {
            s.insert(a);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_spellings() {
        assert_eq!("read".parse::<Action>().unwrap(), Action::Read);
        assert_eq!("W".parse::<Action>().unwrap(), Action::Write);
        assert_eq!("x".parse::<Action>().unwrap(), Action::Execute);
        assert_eq!("CFG".parse::<Action>().unwrap(), Action::Configure);
        assert!("fly".parse::<Action>().is_err());
    }

    #[test]
    fn keyword_round_trip() {
        for a in Action::ALL {
            assert_eq!(a.keyword().parse::<Action>().unwrap(), a);
        }
    }

    #[test]
    fn set_operations() {
        let mut s = ActionSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Action::Read);
        s.insert(Action::Read);
        assert_eq!(s.len(), 1);
        s.insert(Action::Configure);
        assert!(s.contains(Action::Configure));
        s.remove(Action::Read);
        assert!(!s.contains(Action::Read));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_all() {
        let r = ActionSet::only(Action::Read);
        let w = ActionSet::only(Action::Write);
        assert_eq!(r.union(w), ActionSet::of(&[Action::Read, Action::Write]));
        assert_eq!(ActionSet::all().len(), 4);
    }

    #[test]
    fn display_canonical_order() {
        let s = ActionSet::of(&[Action::Configure, Action::Read]);
        assert_eq!(s.to_string(), "read, configure");
        assert_eq!(ActionSet::EMPTY.to_string(), "none");
    }

    #[test]
    fn from_iterator() {
        let s: ActionSet = [Action::Write, Action::Execute].into_iter().collect();
        assert_eq!(s.len(), 2);
        let back: Vec<Action> = s.iter().collect();
        assert_eq!(back, vec![Action::Write, Action::Execute]);
    }
}
