//! A fixed-size, lock-free, generation-tagged decision cache.
//!
//! [`GenCache`] is the caching idiom shared by the policy engine's decision
//! cache and `polsec-hpe`'s verdict cache (and mirrored, in map form, by
//! `polsec-mac`'s AVC): entries are tagged with the policy **generation**
//! they were computed under, and a reload invalidates by bumping the
//! generation — stale entries can never answer, they are simply overwritten.
//!
//! The table is direct-mapped and every slot is a tiny seqlock built purely
//! from atomics (no `unsafe`): a writer claims a slot by CAS-ing its
//! sequence number from even to odd, stores the key and value, then
//! publishes by storing the next even number. Readers snapshot the sequence
//! before and after reading and discard torn reads. Lookups therefore never
//! block, never allocate, and never contend with each other; concurrent
//! writers to the same slot simply skip the insert (caching is
//! best-effort).
//!
//! Keys are three `u64` words packed by the caller; the third word must be
//! non-zero (callers set [`KEY_VALID`]) so an all-zero slot can never match.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Bit the caller must set in `key[2]` so empty slots never match.
pub const KEY_VALID: u64 = 1 << 63;

struct Slot {
    seq: AtomicU32,
    k0: AtomicU64,
    k1: AtomicU64,
    k2: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            seq: AtomicU32::new(0),
            k0: AtomicU64::new(0),
            k1: AtomicU64::new(0),
            k2: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

/// The cache. See the module docs for the concurrency scheme.
pub struct GenCache {
    slots: Box<[Slot]>,
    mask: usize,
}

impl std::fmt::Debug for GenCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenCache").field("slots", &self.slots.len()).finish()
    }
}

fn mix(key: [u64; 3]) -> u64 {
    // splitmix64-style finalisation over the three words
    let mut h = key[0]
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ key[1].rotate_left(23)
        ^ key[2].rotate_left(47);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl GenCache {
    /// Creates a cache with `capacity` slots, rounded up to a power of two
    /// (minimum 64).
    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().max(64);
        GenCache {
            slots: (0..n).map(|_| Slot::new()).collect(),
            mask: n - 1,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Looks up a packed key; returns the cached value on an exact match.
    ///
    /// `key[2]` must include [`KEY_VALID`] and the current generation, so a
    /// stale-generation entry fails the comparison and reads as a miss.
    #[inline]
    pub fn lookup(&self, key: [u64; 3]) -> Option<u64> {
        let slot = &self.slots[(mix(key) as usize) & self.mask];
        let before = slot.seq.load(Ordering::Acquire);
        if before & 1 != 0 {
            return None; // write in progress
        }
        let k0 = slot.k0.load(Ordering::Acquire);
        let k1 = slot.k1.load(Ordering::Acquire);
        let k2 = slot.k2.load(Ordering::Acquire);
        let value = slot.value.load(Ordering::Acquire);
        if slot.seq.load(Ordering::Acquire) != before {
            return None; // torn read
        }
        if [k0, k1, k2] == key {
            Some(value)
        } else {
            None
        }
    }

    /// Best-effort insert: skipped when another writer holds the slot.
    #[inline]
    pub fn insert(&self, key: [u64; 3], value: u64) {
        debug_assert!(key[2] & KEY_VALID != 0, "cache keys must set KEY_VALID");
        let slot = &self.slots[(mix(key) as usize) & self.mask];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 != 0 {
            return;
        }
        if slot
            .seq
            .compare_exchange(seq, seq.wrapping_add(1), Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        slot.k0.store(key[0], Ordering::Release);
        slot.k1.store(key[1], Ordering::Release);
        slot.k2.store(key[2], Ordering::Release);
        slot.value.store(value, Ordering::Release);
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Erases every slot (used on reload alongside the generation bump, so
    /// a wrapped generation counter can never resurrect an old entry).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq & 1 != 0 {
                continue;
            }
            if slot
                .seq
                .compare_exchange(seq, seq.wrapping_add(1), Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            slot.k0.store(0, Ordering::Release);
            slot.k1.store(0, Ordering::Release);
            slot.k2.store(0, Ordering::Release);
            slot.value.store(0, Ordering::Release);
            slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u64, b: u64, c: u64) -> [u64; 3] {
        [a, b, c | KEY_VALID]
    }

    #[test]
    fn miss_then_hit() {
        let cache = GenCache::with_capacity(64);
        assert_eq!(cache.lookup(key(1, 2, 3)), None);
        cache.insert(key(1, 2, 3), 42);
        assert_eq!(cache.lookup(key(1, 2, 3)), Some(42));
    }

    #[test]
    fn different_generation_is_a_miss() {
        let cache = GenCache::with_capacity(64);
        cache.insert(key(1, 2, 3), 7);
        assert_eq!(cache.lookup(key(1, 2, 4)), None, "generation in k2 differs");
    }

    #[test]
    fn clear_erases() {
        let cache = GenCache::with_capacity(64);
        cache.insert(key(9, 9, 9), 1);
        cache.clear();
        assert_eq!(cache.lookup(key(9, 9, 9)), None);
    }

    #[test]
    fn colliding_slot_overwrites() {
        let cache = GenCache::with_capacity(64);
        // Insert many keys; whatever collides simply overwrites. Lookups
        // must never return a value for the wrong key.
        for i in 0..1_000u64 {
            cache.insert(key(i, i * 3, 1), i);
        }
        for i in 0..1_000u64 {
            if let Some(v) = cache.lookup(key(i, i * 3, 1)) {
                assert_eq!(v, i);
            }
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(GenCache::with_capacity(1000).capacity(), 1024);
        assert_eq!(GenCache::with_capacity(1).capacity(), 64);
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        use std::sync::Arc;
        let cache = Arc::new(GenCache::with_capacity(256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    let k = key(i % 97, t, 5);
                    c.insert(k, (i % 97) * 1000 + t);
                    if let Some(v) = c.lookup(k) {
                        // Any hit must decode back to its own key's value.
                        assert_eq!(v % 1000, t);
                        assert_eq!(v / 1000, i % 97);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics under concurrency");
        }
    }
}
