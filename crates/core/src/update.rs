//! Device-side policy store with signed updates and rollback.
//!
//! [`DevicePolicyStore`] models the on-device half of the paper's update
//! mechanism: it holds the active [`PolicySet`] and its version, accepts
//! [`SignedBundle`]s (verifying authenticity and version monotonicity),
//! keeps the previous set for one-step rollback, and records an update
//! history for audit.

use crate::bundle::SignedBundle;
use crate::error::PolicyError;
use crate::policy::PolicySet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One entry in the device's update history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// Version installed by this event.
    pub version: u64,
    /// What happened.
    pub outcome: UpdateOutcome,
    /// The bundle's stated rationale (empty for rollbacks).
    pub rationale: String,
}

/// Result classification for an update attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateOutcome {
    /// The bundle verified and was installed.
    Applied,
    /// The bundle's signature failed verification.
    RejectedSignature,
    /// The bundle did not advance the version.
    RejectedStale,
    /// The payload did not decode.
    RejectedMalformed,
    /// A rollback to the previous version.
    RolledBack,
}

impl fmt::Display for UpdateOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UpdateOutcome::Applied => "applied",
            UpdateOutcome::RejectedSignature => "rejected (signature)",
            UpdateOutcome::RejectedStale => "rejected (stale version)",
            UpdateOutcome::RejectedMalformed => "rejected (malformed)",
            UpdateOutcome::RolledBack => "rolled back",
        };
        f.write_str(s)
    }
}

/// The on-device policy store.
///
/// # Example
/// ```
/// use polsec_core::{DevicePolicyStore, PolicyBundle, Policy, PolicySet};
///
/// let key = b"oem-key".to_vec();
/// let mut store = DevicePolicyStore::new(PolicySet::new(), key.clone());
/// let bundle = PolicyBundle::new(1, "initial provisioning", vec![Policy::new("base", 1)]);
/// store.apply(&bundle.sign(&key))?;
/// assert_eq!(store.version(), 1);
/// # Ok::<(), polsec_core::PolicyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DevicePolicyStore {
    active: PolicySet,
    version: u64,
    previous: Option<(PolicySet, u64)>,
    key: Vec<u8>,
    history: Vec<UpdateRecord>,
}

impl DevicePolicyStore {
    /// Creates a store with a factory policy set at version 0 and the OEM
    /// verification key.
    pub fn new(factory: PolicySet, key: Vec<u8>) -> Self {
        DevicePolicyStore {
            active: factory,
            version: 0,
            previous: None,
            key,
            history: Vec::new(),
        }
    }

    /// The active policy set.
    pub fn active(&self) -> &PolicySet {
        &self.active
    }

    /// The active version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The update history, oldest first.
    pub fn history(&self) -> &[UpdateRecord] {
        &self.history
    }

    /// Applies a signed bundle: verifies the signature, requires the version
    /// to strictly advance, retains the outgoing set for rollback.
    ///
    /// # Errors
    /// [`PolicyError::BadSignature`], [`PolicyError::StaleVersion`] or
    /// [`PolicyError::MalformedBundle`]; every rejection is also recorded in
    /// the history.
    pub fn apply(&mut self, signed: &SignedBundle) -> Result<(), PolicyError> {
        let bundle = match signed.verify(&self.key) {
            Ok(b) => b,
            Err(e) => {
                let outcome = match &e {
                    PolicyError::BadSignature => UpdateOutcome::RejectedSignature,
                    PolicyError::MalformedBundle { .. } => UpdateOutcome::RejectedMalformed,
                    _ => UpdateOutcome::RejectedMalformed,
                };
                self.history.push(UpdateRecord {
                    version: self.version,
                    outcome,
                    rationale: String::new(),
                });
                return Err(e);
            }
        };
        if bundle.version <= self.version {
            self.history.push(UpdateRecord {
                version: self.version,
                outcome: UpdateOutcome::RejectedStale,
                rationale: bundle.rationale.clone(),
            });
            return Err(PolicyError::StaleVersion {
                current: self.version,
                offered: bundle.version,
            });
        }
        let incoming: PolicySet = bundle.policies.iter().cloned().collect();
        let outgoing = std::mem::replace(&mut self.active, incoming);
        self.previous = Some((outgoing, self.version));
        self.version = bundle.version;
        self.history.push(UpdateRecord {
            version: bundle.version,
            outcome: UpdateOutcome::Applied,
            rationale: bundle.rationale,
        });
        Ok(())
    }

    /// Rolls back to the previous policy set (one step).
    ///
    /// # Errors
    /// [`PolicyError::NothingToRollBack`] when no previous set is retained.
    pub fn rollback(&mut self) -> Result<(), PolicyError> {
        let (prev_set, prev_version) = self.previous.take().ok_or(PolicyError::NothingToRollBack)?;
        self.active = prev_set;
        self.version = prev_version;
        self.history.push(UpdateRecord {
            version: prev_version,
            outcome: UpdateOutcome::RolledBack,
            rationale: String::new(),
        });
        Ok(())
    }

    /// Whether a rollback target exists.
    pub fn can_rollback(&self) -> bool {
        self.previous.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::PolicyBundle;
    use crate::policy::Policy;

    const KEY: &[u8] = b"device-key";

    fn store() -> DevicePolicyStore {
        DevicePolicyStore::new(PolicySet::new(), KEY.to_vec())
    }

    fn bundle(version: u64, name: &str) -> PolicyBundle {
        PolicyBundle::new(version, format!("update {version}"), vec![Policy::new(name, version)])
    }

    #[test]
    fn apply_advances_version_and_set() {
        let mut s = store();
        s.apply(&bundle(1, "a").sign(KEY)).unwrap();
        assert_eq!(s.version(), 1);
        assert!(s.active().policy("a").is_some());
        s.apply(&bundle(2, "b").sign(KEY)).unwrap();
        assert_eq!(s.version(), 2);
        assert!(s.active().policy("b").is_some());
        assert!(s.active().policy("a").is_none(), "bundle replaces the set");
    }

    #[test]
    fn stale_and_equal_versions_rejected() {
        let mut s = store();
        s.apply(&bundle(5, "a").sign(KEY)).unwrap();
        let err = s.apply(&bundle(5, "b").sign(KEY)).unwrap_err();
        assert_eq!(err, PolicyError::StaleVersion { current: 5, offered: 5 });
        let err = s.apply(&bundle(4, "b").sign(KEY)).unwrap_err();
        assert_eq!(err, PolicyError::StaleVersion { current: 5, offered: 4 });
        assert_eq!(s.version(), 5, "rejections leave the store unchanged");
    }

    #[test]
    fn bad_signature_rejected_and_recorded() {
        let mut s = store();
        let forged = bundle(1, "a").sign(b"attacker-key");
        assert_eq!(s.apply(&forged).unwrap_err(), PolicyError::BadSignature);
        assert_eq!(s.version(), 0);
        assert_eq!(
            s.history().last().unwrap().outcome,
            UpdateOutcome::RejectedSignature
        );
    }

    #[test]
    fn tampered_bundle_rejected() {
        let mut s = store();
        let signed = bundle(1, "a").sign(KEY);
        assert_eq!(s.apply(&signed.tampered()).unwrap_err(), PolicyError::BadSignature);
    }

    #[test]
    fn rollback_restores_previous() {
        let mut s = store();
        s.apply(&bundle(1, "a").sign(KEY)).unwrap();
        s.apply(&bundle(2, "b").sign(KEY)).unwrap();
        assert!(s.can_rollback());
        s.rollback().unwrap();
        assert_eq!(s.version(), 1);
        assert!(s.active().policy("a").is_some());
        // only one step retained
        assert!(!s.can_rollback());
        assert_eq!(s.rollback().unwrap_err(), PolicyError::NothingToRollBack);
    }

    #[test]
    fn history_records_everything() {
        let mut s = store();
        s.apply(&bundle(1, "a").sign(KEY)).unwrap();
        let _ = s.apply(&bundle(1, "b").sign(KEY));
        let _ = s.apply(&bundle(2, "c").sign(b"bad-key"));
        s.apply(&bundle(2, "c").sign(KEY)).unwrap();
        s.rollback().unwrap();
        let outcomes: Vec<UpdateOutcome> = s.history().iter().map(|r| r.outcome).collect();
        assert_eq!(
            outcomes,
            vec![
                UpdateOutcome::Applied,
                UpdateOutcome::RejectedStale,
                UpdateOutcome::RejectedSignature,
                UpdateOutcome::Applied,
                UpdateOutcome::RolledBack,
            ]
        );
    }

    #[test]
    fn outcome_display() {
        assert_eq!(UpdateOutcome::Applied.to_string(), "applied");
        assert_eq!(UpdateOutcome::RejectedStale.to_string(), "rejected (stale version)");
    }
}
