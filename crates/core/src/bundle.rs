//! Versioned, signed policy bundles.
//!
//! The paper's §IV: "should the security requirements of the device change
//! after production … the OEM can distribute a policy definition update."
//! A [`PolicyBundle`] is the update artefact — a version number plus the
//! policies it carries — and a [`SignedBundle`] is its wire form: a
//! canonical text payload (a small header plus the policies in canonical
//! DSL form, which round-trips by construction) plus an HMAC-SHA-256 tag
//! under the OEM key.

use crate::dsl::{parse_policies, print_policy};
use crate::error::PolicyError;
use crate::policy::Policy;
use crate::sign::{digests_equal, from_hex, hmac_sha256, to_hex};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic first line of the canonical payload.
const BUNDLE_MAGIC: &str = "polsec-bundle/1";

fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// An unsigned policy update bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyBundle {
    /// Monotonically increasing bundle version.
    pub version: u64,
    /// Free-text description of why the update was issued (the discovered
    /// threat, the advisory id, …).
    pub rationale: String,
    /// The policies the device should enforce after applying the bundle.
    pub policies: Vec<Policy>,
}

impl PolicyBundle {
    /// Creates a bundle.
    pub fn new(version: u64, rationale: impl Into<String>, policies: Vec<Policy>) -> Self {
        PolicyBundle {
            version,
            rationale: rationale.into(),
            policies,
        }
    }

    /// Serialises to the canonical payload bytes that get signed: a
    /// header (magic, version, escaped rationale) followed by every policy
    /// printed in canonical DSL form. The DSL printer is deterministic and
    /// `parse(print(p)) == p` is property-tested, which is all
    /// canonicalisation needs.
    pub fn payload(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(BUNDLE_MAGIC);
        out.push('\n');
        out.push_str(&format!("version {}\n", self.version));
        out.push_str(&format!("rationale {}\n", escape_line(&self.rationale)));
        for p in &self.policies {
            out.push('\n');
            out.push_str(&print_policy(p));
        }
        out.into_bytes()
    }

    /// Parses canonical payload bytes back into a bundle.
    ///
    /// # Errors
    /// [`PolicyError::MalformedBundle`] when the header or any policy does
    /// not parse.
    pub fn from_payload(payload: &[u8]) -> Result<Self, PolicyError> {
        let text = std::str::from_utf8(payload).map_err(|_| PolicyError::MalformedBundle {
            detail: "payload is not utf-8".into(),
        })?;
        let malformed = |detail: &str| PolicyError::MalformedBundle { detail: detail.into() };
        let mut lines = text.lines();
        if lines.next() != Some(BUNDLE_MAGIC) {
            return Err(malformed("missing bundle magic"));
        }
        let version = lines
            .next()
            .and_then(|l| l.strip_prefix("version "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .ok_or_else(|| malformed("missing or invalid version line"))?;
        let rationale = lines
            .next()
            .and_then(|l| l.strip_prefix("rationale "))
            .map(unescape_line)
            .ok_or_else(|| malformed("missing rationale line"))?;
        let rest: String = lines.collect::<Vec<_>>().join("\n");
        let policies = if rest.trim().is_empty() {
            Vec::new()
        } else {
            parse_policies(&rest).map_err(|e| PolicyError::MalformedBundle {
                detail: e.to_string(),
            })?
        };
        Ok(PolicyBundle { version, rationale, policies })
    }

    /// Signs the bundle under `key`, producing the wire artefact.
    pub fn sign(&self, key: &[u8]) -> SignedBundle {
        let payload = self.payload();
        let tag = hmac_sha256(key, &payload);
        SignedBundle {
            payload,
            signature_hex: to_hex(&tag),
        }
    }

    /// Total number of rules across all carried policies.
    pub fn rule_count(&self) -> usize {
        self.policies.iter().map(|p| p.len()).sum()
    }
}

impl fmt::Display for PolicyBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bundle v{} ({} policies, {} rules): {}",
            self.version,
            self.policies.len(),
            self.rule_count(),
            self.rationale
        )
    }
}

/// A signed bundle as distributed to devices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedBundle {
    payload: Vec<u8>,
    signature_hex: String,
}

impl SignedBundle {
    /// The raw payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The signature in hex.
    pub fn signature_hex(&self) -> &str {
        &self.signature_hex
    }

    /// Verifies the signature under `key` and deserialises the bundle.
    ///
    /// # Errors
    /// * [`PolicyError::BadSignature`] — tag mismatch or undecodable tag;
    /// * [`PolicyError::MalformedBundle`] — payload not a valid bundle.
    pub fn verify(&self, key: &[u8]) -> Result<PolicyBundle, PolicyError> {
        let expected = hmac_sha256(key, &self.payload);
        let given = from_hex(&self.signature_hex).ok_or(PolicyError::BadSignature)?;
        if !digests_equal(&expected, &given) {
            return Err(PolicyError::BadSignature);
        }
        PolicyBundle::from_payload(&self.payload)
    }

    /// Builds a signed bundle from raw parts (e.g. received bytes) without
    /// verification — call [`SignedBundle::verify`] before trusting it.
    pub fn from_parts(payload: Vec<u8>, signature_hex: String) -> Self {
        SignedBundle {
            payload,
            signature_hex,
        }
    }

    /// A tampered copy with one payload byte flipped — test helper for the
    /// tamper-rejection experiments.
    pub fn tampered(&self) -> SignedBundle {
        let mut payload = self.payload.clone();
        if let Some(b) = payload.last_mut() {
            *b ^= 0x01;
        }
        SignedBundle {
            payload,
            signature_hex: self.signature_hex.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionSet};
    use crate::entity::EntityMatcher;
    use crate::policy::{Effect, Rule};

    const KEY: &[u8] = b"oem-signing-key";

    fn bundle(version: u64) -> PolicyBundle {
        let p = Policy::new("ecu", version)
            .add_rule(Rule::new(
                "r1",
                Effect::Deny,
                ActionSet::only(Action::Write),
                EntityMatcher::anything(),
                EntityMatcher::anything(),
            ))
            .unwrap();
        PolicyBundle::new(version, "CVE-2018-XXXX response", vec![p])
    }

    #[test]
    fn sign_verify_round_trip() {
        let b = bundle(3);
        let signed = b.sign(KEY);
        let back = signed.verify(KEY).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.rule_count(), 1);
    }

    #[test]
    fn wrong_key_rejected() {
        let signed = bundle(1).sign(KEY);
        assert_eq!(signed.verify(b"not-the-key").unwrap_err(), PolicyError::BadSignature);
    }

    #[test]
    fn tampered_payload_rejected() {
        let signed = bundle(1).sign(KEY);
        assert_eq!(signed.tampered().verify(KEY).unwrap_err(), PolicyError::BadSignature);
    }

    #[test]
    fn garbage_signature_rejected() {
        let signed = bundle(1).sign(KEY);
        let bad = SignedBundle::from_parts(signed.payload().to_vec(), "zznothex".into());
        assert_eq!(bad.verify(KEY).unwrap_err(), PolicyError::BadSignature);
    }

    #[test]
    fn malformed_payload_with_valid_tag_rejected_as_bundle() {
        // sign arbitrary junk so the signature verifies but decoding fails
        let junk = b"{\"not\": \"a bundle\"}".to_vec();
        let tag = to_hex(&hmac_sha256(KEY, &junk));
        let s = SignedBundle::from_parts(junk, tag);
        assert!(matches!(
            s.verify(KEY).unwrap_err(),
            PolicyError::MalformedBundle { .. }
        ));
    }

    #[test]
    fn payload_is_deterministic() {
        assert_eq!(bundle(2).payload(), bundle(2).payload());
        assert_ne!(bundle(2).payload(), bundle(3).payload());
    }

    #[test]
    fn display_summarises() {
        let text = bundle(7).to_string();
        assert!(text.contains("bundle v7"));
        assert!(text.contains("1 policies, 1 rules"));
        assert!(text.contains("CVE-2018-XXXX"));
    }
}
