//! Rule conditions.
//!
//! Beyond plain read/write permissions, the paper anticipates "more complex
//! policies such as behavioural or situational based policies" (§V).
//! [`Condition`] is that extension point: predicates over the evaluation
//! context — current operating mode, named system state, request rates —
//! composable with boolean operators.

use crate::request::EvalContext;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A provider of live event rates, consulted by
/// [`Condition::RateAtMost`] during evaluation.
///
/// [`EvalContext`] implements this over its caller-set rates; the engine
/// implements it over its per-key atomic counters (falling back to the
/// context), so rate conditions read fresh values without the context
/// being cloned or mutated per decision.
pub trait RateSource {
    /// The sustained events-per-second for `key` (0.0 when unknown).
    fn rate_per_sec(&self, key: &str) -> f64;
}

/// A predicate over the evaluation context.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum Condition {
    /// Always true (the default for unconditional rules).
    #[default]
    Always,
    /// True when the context's operating mode equals the given name.
    InMode(String),
    /// True when a named state variable equals a value
    /// (e.g. `vehicle.moving == true`).
    StateEquals {
        /// State key.
        key: String,
        /// Expected value.
        value: String,
    },
    /// True while the named rate counter is at or below `max_per_sec`
    /// (a situational anti-flooding policy).
    RateAtMost {
        /// Rate counter key (the engine tracks one window per key).
        key: String,
        /// Maximum sustained events per second.
        max_per_sec: u32,
    },
    /// Logical conjunction.
    All(Vec<Condition>),
    /// Logical disjunction.
    AnyOf(Vec<Condition>),
    /// Logical negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Evaluates the condition against a context, reading rates from the
    /// context itself.
    pub fn eval(&self, ctx: &EvalContext) -> bool {
        self.eval_with(ctx, ctx)
    }

    /// Evaluates the condition against a context with rates supplied by an
    /// explicit [`RateSource`] (the engine's live counters).
    pub fn eval_with(&self, ctx: &EvalContext, rates: &dyn RateSource) -> bool {
        match self {
            Condition::Always => true,
            Condition::InMode(m) => ctx.mode() == Some(m.as_str()),
            Condition::StateEquals { key, value } => ctx.state(key) == Some(value.as_str()),
            Condition::RateAtMost { key, max_per_sec } => {
                rates.rate_per_sec(key) <= *max_per_sec as f64
            }
            Condition::All(cs) => cs.iter().all(|c| c.eval_with(ctx, rates)),
            Condition::AnyOf(cs) => cs.iter().any(|c| c.eval_with(ctx, rates)),
            Condition::Not(c) => !c.eval_with(ctx, rates),
        }
    }

    /// Whether a decision gated by this condition may be cached on a
    /// `(subject, object, action, mode)` key: true when the condition
    /// depends on nothing outside that key. `StateEquals` and `RateAtMost`
    /// read context state and live rate counters the key does not capture,
    /// so the engine's load-time cacheability analysis marks any bucket
    /// containing them non-cacheable and routes those requests around the
    /// decision cache (the cacheability-analysis bypass — see
    /// `engine.rs::rebuild`); `InMode` is cacheable because the mode is
    /// part of the key.
    pub fn is_cache_safe(&self) -> bool {
        match self {
            Condition::Always | Condition::InMode(_) => true,
            Condition::StateEquals { .. } | Condition::RateAtMost { .. } => false,
            Condition::All(cs) | Condition::AnyOf(cs) => cs.iter().all(Condition::is_cache_safe),
            Condition::Not(c) => c.is_cache_safe(),
        }
    }

    /// Conjunction helper that flattens nested `All`s.
    pub fn and(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::Always, b) => b,
            (a, Condition::Always) => a,
            (Condition::All(mut xs), Condition::All(ys)) => {
                xs.extend(ys);
                Condition::All(xs)
            }
            (Condition::All(mut xs), b) => {
                xs.push(b);
                Condition::All(xs)
            }
            (a, Condition::All(mut ys)) => {
                ys.insert(0, a);
                Condition::All(ys)
            }
            (a, b) => Condition::All(vec![a, b]),
        }
    }

    /// Whether the condition references the given rate key (used by the
    /// engine to know which counters to maintain).
    pub fn rate_keys(&self) -> Vec<&str> {
        match self {
            Condition::RateAtMost { key, .. } => vec![key.as_str()],
            Condition::All(cs) | Condition::AnyOf(cs) => {
                cs.iter().flat_map(|c| c.rate_keys()).collect()
            }
            Condition::Not(c) => c.rate_keys(),
            _ => Vec::new(),
        }
    }
}


impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Always => f.write_str("true"),
            Condition::InMode(m) => write!(f, "mode == {m}"),
            Condition::StateEquals { key, value } => write!(f, "state.{key} == {value}"),
            Condition::RateAtMost { key, max_per_sec } => {
                write!(f, "rate({key}) <= {max_per_sec}")
            }
            Condition::All(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| format!("({c})")).collect();
                f.write_str(&parts.join(" && "))
            }
            Condition::AnyOf(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| format!("({c})")).collect();
                f.write_str(&parts.join(" || "))
            }
            Condition::Not(c) => write!(f, "!({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::EvalContext;

    #[test]
    fn always_and_mode() {
        let ctx = EvalContext::new().with_mode("normal");
        assert!(Condition::Always.eval(&ctx));
        assert!(Condition::InMode("normal".into()).eval(&ctx));
        assert!(!Condition::InMode("fail-safe".into()).eval(&ctx));
        // no mode set ⇒ InMode is false
        assert!(!Condition::InMode("normal".into()).eval(&EvalContext::new()));
    }

    #[test]
    fn state_equals() {
        let ctx = EvalContext::new().with_state("vehicle.moving", "true");
        assert!(Condition::StateEquals { key: "vehicle.moving".into(), value: "true".into() }
            .eval(&ctx));
        assert!(!Condition::StateEquals { key: "vehicle.moving".into(), value: "false".into() }
            .eval(&ctx));
        assert!(!Condition::StateEquals { key: "missing".into(), value: "x".into() }.eval(&ctx));
    }

    #[test]
    fn rate_at_most() {
        let mut ctx = EvalContext::new();
        ctx.set_rate("burst", 5.0);
        assert!(Condition::RateAtMost { key: "burst".into(), max_per_sec: 5 }.eval(&ctx));
        assert!(Condition::RateAtMost { key: "burst".into(), max_per_sec: 6 }.eval(&ctx));
        assert!(!Condition::RateAtMost { key: "burst".into(), max_per_sec: 4 }.eval(&ctx));
        // unknown keys have rate 0 ⇒ condition holds
        assert!(Condition::RateAtMost { key: "quiet".into(), max_per_sec: 0 }.eval(&ctx));
    }

    #[test]
    fn boolean_combinators() {
        let ctx = EvalContext::new().with_mode("normal");
        let in_normal = Condition::InMode("normal".into());
        let in_failsafe = Condition::InMode("fail-safe".into());
        assert!(Condition::All(vec![in_normal.clone(), Condition::Always]).eval(&ctx));
        assert!(!Condition::All(vec![in_normal.clone(), in_failsafe.clone()]).eval(&ctx));
        assert!(Condition::AnyOf(vec![in_failsafe.clone(), in_normal.clone()]).eval(&ctx));
        assert!(!Condition::AnyOf(vec![in_failsafe.clone()]).eval(&ctx));
        assert!(Condition::Not(Box::new(in_failsafe)).eval(&ctx));
        assert!(!Condition::Not(Box::new(in_normal)).eval(&ctx));
    }

    #[test]
    fn empty_combinators_follow_logic_identities() {
        let ctx = EvalContext::new();
        assert!(Condition::All(vec![]).eval(&ctx), "empty conjunction is true");
        assert!(!Condition::AnyOf(vec![]).eval(&ctx), "empty disjunction is false");
    }

    #[test]
    fn and_flattens() {
        let a = Condition::InMode("a".into());
        let b = Condition::InMode("b".into());
        let c = Condition::InMode("c".into());
        let combined = a.clone().and(b.clone()).and(c.clone());
        assert_eq!(combined, Condition::All(vec![a.clone(), b, c]));
        // identity
        assert_eq!(Condition::Always.and(a.clone()), a);
        assert_eq!(a.clone().and(Condition::Always), a);
    }

    #[test]
    fn rate_keys_collects_nested() {
        let c = Condition::All(vec![
            Condition::RateAtMost { key: "x".into(), max_per_sec: 1 },
            Condition::Not(Box::new(Condition::RateAtMost { key: "y".into(), max_per_sec: 2 })),
            Condition::InMode("m".into()),
        ]);
        assert_eq!(c.rate_keys(), vec!["x", "y"]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Condition::Always.to_string(), "true");
        assert_eq!(Condition::InMode("normal".into()).to_string(), "mode == normal");
        assert_eq!(
            Condition::StateEquals { key: "k".into(), value: "v".into() }.to_string(),
            "state.k == v"
        );
        assert_eq!(
            Condition::RateAtMost { key: "r".into(), max_per_sec: 9 }.to_string(),
            "rate(r) <= 9"
        );
        let c = Condition::All(vec![Condition::Always, Condition::Always]);
        assert_eq!(c.to_string(), "(true) && (true)");
    }

    #[test]
    fn default_is_always() {
        assert_eq!(Condition::default(), Condition::Always);
    }

    #[test]
    fn cache_safety_analysis() {
        assert!(Condition::Always.is_cache_safe());
        assert!(Condition::InMode("normal".into()).is_cache_safe());
        assert!(!Condition::StateEquals { key: "k".into(), value: "v".into() }.is_cache_safe());
        assert!(!Condition::RateAtMost { key: "r".into(), max_per_sec: 1 }.is_cache_safe());
        // combinators propagate the weakest member
        assert!(Condition::All(vec![Condition::Always, Condition::InMode("m".into())])
            .is_cache_safe());
        assert!(!Condition::AnyOf(vec![
            Condition::Always,
            Condition::RateAtMost { key: "r".into(), max_per_sec: 1 }
        ])
        .is_cache_safe());
        assert!(!Condition::Not(Box::new(Condition::StateEquals {
            key: "k".into(),
            value: "v".into()
        }))
        .is_cache_safe());
    }

    #[test]
    fn eval_with_overrides_rate_source() {
        struct Fixed(f64);
        impl RateSource for Fixed {
            fn rate_per_sec(&self, _key: &str) -> f64 {
                self.0
            }
        }
        let c = Condition::RateAtMost { key: "burst".into(), max_per_sec: 5 };
        let ctx = EvalContext::new();
        assert!(c.eval_with(&ctx, &Fixed(5.0)));
        assert!(!c.eval_with(&ctx, &Fixed(6.0)));
        // plain eval falls back to the context's own rates
        assert!(c.eval(&ctx), "unknown key reads 0.0");
    }
}
