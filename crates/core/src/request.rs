//! Access requests and evaluation contexts.

use crate::action::Action;
use crate::entity::EntityId;
use crate::intern::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One access request: *subject* wants to perform *action* on *object*.
///
/// Requests are `Copy` — two interned entity ids plus an action — so the
/// decision path never clones strings to describe who is asking for what.
///
/// # Example
/// ```
/// use polsec_core::{AccessRequest, Action, EntityId};
/// let r = AccessRequest::new(
///     EntityId::new("entry", "telematics"),
///     EntityId::new("asset", "door-locks"),
///     Action::Write,
/// );
/// assert_eq!(r.to_string(), "entry:telematics --write--> asset:door-locks");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessRequest {
    subject: EntityId,
    object: EntityId,
    action: Action,
}

impl AccessRequest {
    /// Creates a request.
    pub fn new(subject: EntityId, object: EntityId, action: Action) -> Self {
        AccessRequest { subject, object, action }
    }

    /// The requesting entity.
    pub fn subject(&self) -> &EntityId {
        &self.subject
    }

    /// The target entity.
    pub fn object(&self) -> &EntityId {
        &self.object
    }

    /// The requested action.
    pub fn action(&self) -> Action {
        self.action
    }
}

impl fmt::Display for AccessRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}--> {}", self.subject, self.action, self.object)
    }
}

/// The situational context a request is evaluated in: operating mode, named
/// state variables and rate counters.
///
/// Contexts are cheap to clone and carry no interior mutability; stateful
/// tracking (rates over time) is the engine's job, which consults its own
/// per-key counters during rule evaluation and falls back to the rates set
/// here. The operating mode is interned so the engine's decision-cache key
/// can include it without touching strings.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EvalContext {
    mode: Option<Symbol>,
    state: BTreeMap<String, String>,
    rates: BTreeMap<String, f64>,
    rate_scope: Option<u64>,
}

impl EvalContext {
    /// Creates an empty context (no mode, no state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the operating mode (builder style).
    pub fn with_mode(mut self, mode: impl AsRef<str>) -> Self {
        self.mode = Some(Symbol::intern(mode.as_ref()));
        self
    }

    /// Sets a state variable (builder style).
    pub fn with_state(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.state.insert(key.into(), value.into());
        self
    }

    /// The current operating mode, if set.
    pub fn mode(&self) -> Option<&'static str> {
        self.mode.map(Symbol::as_str)
    }

    /// The interned operating mode, if set (used in cache keys).
    pub fn mode_symbol(&self) -> Option<Symbol> {
        self.mode
    }

    /// Changes the operating mode in place.
    pub fn set_mode(&mut self, mode: impl AsRef<str>) {
        self.mode = Some(Symbol::intern(mode.as_ref()));
    }

    /// Reads a state variable.
    pub fn state(&self, key: &str) -> Option<&str> {
        self.state.get(key).map(|s| s.as_str())
    }

    /// Writes a state variable in place.
    pub fn set_state(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.state.insert(key.into(), value.into());
    }

    /// Writes a state variable, reusing the existing value's allocation
    /// when the key is already present.
    ///
    /// Hot enforcement paths (the fleet's behavioural monitors flip
    /// `implausible` on every flagged frame) republish the same few keys
    /// constantly; after the first write this is allocation-free as long
    /// as the new value fits the old capacity.
    pub fn set_state_in_place(&mut self, key: &str, value: &str) {
        match self.state.get_mut(key) {
            Some(slot) => {
                slot.clear();
                slot.push_str(value);
            }
            None => {
                self.state.insert(key.to_string(), value.to_string());
            }
        }
    }

    /// The tracked rate for a key (0.0 when unknown).
    pub fn rate_per_sec(&self, key: &str) -> f64 {
        self.rates.get(key).copied().unwrap_or(0.0)
    }

    /// Writes a caller-provided rate (the engine's own counters take
    /// precedence for keys declared by the loaded policies).
    pub fn set_rate(&mut self, key: impl Into<String>, per_sec: f64) {
        self.rates.insert(key.into(), per_sec);
    }

    /// Selects a rate *scope* for this context (builder style): decisions
    /// evaluated under a scoped context read the engine's per-scope rate
    /// windows (fed by `PolicyEngine::observe_rate_event_scoped`) instead
    /// of the global ones. Scopes keep rate trackers independent between
    /// tenants of one shared engine — e.g. one scope per vehicle of a
    /// fleet, so concurrently simulated vehicles cannot couple through a
    /// shared `rate(...)` window.
    pub fn with_rate_scope(mut self, scope: u64) -> Self {
        self.rate_scope = Some(scope);
        self
    }

    /// Sets or clears the rate scope in place.
    pub fn set_rate_scope(&mut self, scope: Option<u64>) {
        self.rate_scope = scope;
    }

    /// The active rate scope, if any.
    pub fn rate_scope(&self) -> Option<u64> {
        self.rate_scope
    }
}

impl crate::condition::RateSource for EvalContext {
    fn rate_per_sec(&self, key: &str) -> f64 {
        EvalContext::rate_per_sec(self, key)
    }
}

impl fmt::Display for EvalContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mode={}", self.mode().unwrap_or("-"))?;
        for (k, v) in &self.state {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let r = AccessRequest::new(
            EntityId::new("a", "s"),
            EntityId::new("b", "o"),
            Action::Read,
        );
        assert_eq!(r.subject().name(), "s");
        assert_eq!(r.object().namespace(), "b");
        assert_eq!(r.action(), Action::Read);
    }

    #[test]
    fn context_builders_and_mutators() {
        let mut ctx = EvalContext::new()
            .with_mode("normal")
            .with_state("doors", "locked");
        assert_eq!(ctx.mode(), Some("normal"));
        assert_eq!(ctx.state("doors"), Some("locked"));
        assert_eq!(ctx.state("missing"), None);
        ctx.set_mode("fail-safe");
        ctx.set_state("doors", "open");
        assert_eq!(ctx.mode(), Some("fail-safe"));
        assert_eq!(ctx.state("doors"), Some("open"));
    }

    #[test]
    fn in_place_state_writes_match_inserting_ones() {
        let mut a = EvalContext::new().with_state("implausible", "false");
        let mut b = a.clone();
        a.set_state("implausible", "true");
        b.set_state_in_place("implausible", "true");
        assert_eq!(a, b);
        // A fresh key inserts like the plain setter does.
        b.set_state_in_place("new", "v");
        assert_eq!(b.state("new"), Some("v"));
        // A shorter value fully replaces the longer one.
        b.set_state_in_place("implausible", "f");
        assert_eq!(b.state("implausible"), Some("f"));
    }

    #[test]
    fn rates_default_zero() {
        let mut ctx = EvalContext::new();
        assert_eq!(ctx.rate_per_sec("x"), 0.0);
        ctx.set_rate("x", 2.5);
        assert_eq!(ctx.rate_per_sec("x"), 2.5);
    }

    #[test]
    fn mode_symbol_matches_mode() {
        let ctx = EvalContext::new().with_mode("normal");
        assert_eq!(ctx.mode_symbol().unwrap().as_str(), "normal");
        assert_eq!(EvalContext::new().mode_symbol(), None);
    }

    #[test]
    fn displays() {
        let ctx = EvalContext::new().with_mode("m").with_state("k", "v");
        assert_eq!(ctx.to_string(), "mode=m k=v");
        assert_eq!(EvalContext::new().to_string(), "mode=-");
    }
}
