//! Rules, policies and policy sets.

use crate::action::{Action, ActionSet};
use crate::condition::Condition;
use crate::entity::EntityMatcher;
use crate::error::PolicyError;
use crate::intern::Symbol;
use crate::request::{AccessRequest, EvalContext};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The outcome a rule (or the engine) prescribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effect {
    /// Access granted.
    Allow,
    /// Access denied.
    Deny,
}

impl Effect {
    /// The DSL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Effect::Allow => "allow",
            Effect::Deny => "deny",
        }
    }

    /// The opposite effect.
    pub fn invert(self) -> Effect {
        match self {
            Effect::Allow => Effect::Deny,
            Effect::Deny => Effect::Allow,
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One policy rule.
///
/// A rule *applies* to a request when its subject matcher, object matcher
/// and action set all match and its condition holds in the context; an
/// applying rule contributes its [`Effect`] under the engine's combining
/// strategy. Priority orders rules under the priority-order strategy
/// (higher wins).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    id: Symbol,
    effect: Effect,
    actions: ActionSet,
    subject: EntityMatcher,
    object: EntityMatcher,
    condition: Condition,
    priority: i32,
}

impl Rule {
    /// Creates a rule with [`Condition::Always`] and priority 0.
    pub fn new(
        id: impl AsRef<str>,
        effect: Effect,
        actions: ActionSet,
        subject: EntityMatcher,
        object: EntityMatcher,
    ) -> Self {
        Rule {
            id: Symbol::intern(id.as_ref()),
            effect,
            actions,
            subject,
            object,
            condition: Condition::Always,
            priority: 0,
        }
    }

    /// Sets the condition (builder style).
    pub fn when(mut self, c: Condition) -> Self {
        self.condition = c;
        self
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// The rule id.
    pub fn id(&self) -> &'static str {
        self.id.as_str()
    }

    /// The interned rule id.
    pub fn id_symbol(&self) -> Symbol {
        self.id
    }

    /// The rule's effect.
    pub fn effect(&self) -> Effect {
        self.effect
    }

    /// The actions the rule covers.
    pub fn actions(&self) -> ActionSet {
        self.actions
    }

    /// The subject matcher.
    pub fn subject(&self) -> &EntityMatcher {
        &self.subject
    }

    /// The object matcher.
    pub fn object(&self) -> &EntityMatcher {
        &self.object
    }

    /// The condition.
    pub fn condition(&self) -> &Condition {
        &self.condition
    }

    /// The priority (higher wins under priority-order combining).
    pub fn priority(&self) -> i32 {
        self.priority
    }

    /// Whether the rule applies to `req` in `ctx`.
    pub fn applies(&self, req: &AccessRequest, ctx: &EvalContext) -> bool {
        self.applies_with(req, ctx, ctx)
    }

    /// Whether the rule applies, with rates read from an explicit
    /// [`RateSource`](crate::condition::RateSource) (the engine's live
    /// counters) instead of the context.
    pub fn applies_with(
        &self,
        req: &AccessRequest,
        ctx: &EvalContext,
        rates: &dyn crate::condition::RateSource,
    ) -> bool {
        self.actions.contains(req.action())
            && self.subject.matches(req.subject())
            && self.object.matches(req.object())
            && self.condition.eval_with(ctx, rates)
    }

    /// Whether the rule covers `action` at all (context-independent).
    pub fn covers_action(&self, action: Action) -> bool {
        self.actions.contains(action)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} on {} from {}",
            self.effect, self.actions, self.object, self.subject
        )?;
        if self.condition != Condition::Always {
            write!(f, " when {}", self.condition)?;
        }
        if self.priority != 0 {
            write!(f, " priority {}", self.priority)?;
        }
        Ok(())
    }
}

/// A named, versioned collection of rules with a default effect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    name: String,
    version: u64,
    default_effect: Effect,
    rules: Vec<Rule>,
}

impl Policy {
    /// Creates an empty policy with default effect deny (least privilege).
    pub fn new(name: impl Into<String>, version: u64) -> Self {
        Policy {
            name: name.into(),
            version,
            default_effect: Effect::Deny,
            rules: Vec::new(),
        }
    }

    /// Sets the default effect (builder style).
    pub fn with_default(mut self, e: Effect) -> Self {
        self.default_effect = e;
        self
    }

    /// Appends a rule (builder style).
    ///
    /// # Errors
    /// [`PolicyError::DuplicateRule`] when a rule with the same id exists.
    pub fn add_rule(mut self, rule: Rule) -> Result<Self, PolicyError> {
        if self.rules.iter().any(|r| r.id() == rule.id()) {
            return Err(PolicyError::DuplicateRule { id: rule.id().to_string() });
        }
        self.rules.push(rule);
        Ok(self)
    }

    /// The policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The policy version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The default effect when no rule applies.
    pub fn default_effect(&self) -> Effect {
        self.default_effect
    }

    /// The rules in declaration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the policy has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "policy \"{}\" version {} (default {}, {} rules)",
            self.name,
            self.version,
            self.default_effect,
            self.rules.len()
        )?;
        for r in &self.rules {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// Several policies evaluated together.
///
/// The set's default effect is deny if *any* member policy defaults to deny
/// (least privilege wins); rules keep their owning policy's name for audit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicySet {
    policies: Vec<Policy>,
}

impl PolicySet {
    /// Creates an empty set (default effect: deny).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from one policy.
    pub fn from_policy(p: Policy) -> Self {
        PolicySet { policies: vec![p] }
    }

    /// Adds a policy.
    pub fn add(&mut self, p: Policy) {
        self.policies.push(p);
    }

    /// Replaces a policy with the same name, or adds it. Returns whether an
    /// existing policy was replaced.
    pub fn upsert(&mut self, p: Policy) -> bool {
        if let Some(slot) = self.policies.iter_mut().find(|x| x.name() == p.name()) {
            *slot = p;
            true
        } else {
            self.policies.push(p);
            false
        }
    }

    /// Removes a policy by name; returns it if present.
    pub fn remove(&mut self, name: &str) -> Option<Policy> {
        let idx = self.policies.iter().position(|p| p.name() == name)?;
        Some(self.policies.remove(idx))
    }

    /// The member policies.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Looks up a policy by name.
    pub fn policy(&self, name: &str) -> Option<&Policy> {
        self.policies.iter().find(|p| p.name() == name)
    }

    /// Iterates all rules with their owning policy name.
    pub fn rules(&self) -> impl Iterator<Item = (&str, &Rule)> {
        self.policies
            .iter()
            .flat_map(|p| p.rules().iter().map(move |r| (p.name(), r)))
    }

    /// Total rule count.
    pub fn rule_count(&self) -> usize {
        self.policies.iter().map(|p| p.len()).sum()
    }

    /// The combined default effect: deny unless every member policy (and at
    /// least one exists) defaults to allow.
    pub fn default_effect(&self) -> Effect {
        if !self.policies.is_empty()
            && self.policies.iter().all(|p| p.default_effect() == Effect::Allow)
        {
            Effect::Allow
        } else {
            Effect::Deny
        }
    }

    /// All distinct rate-counter keys referenced by rule conditions.
    pub fn rate_keys(&self) -> BTreeSet<String> {
        self.rules()
            .flat_map(|(_, r)| r.condition().rate_keys())
            .map(str::to_string)
            .collect()
    }
}

impl FromIterator<Policy> for PolicySet {
    fn from_iter<T: IntoIterator<Item = Policy>>(iter: T) -> Self {
        PolicySet {
            policies: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityId, Pattern};

    fn rule(id: &str, effect: Effect) -> Rule {
        Rule::new(
            id,
            effect,
            ActionSet::only(Action::Read),
            EntityMatcher::anything(),
            EntityMatcher::anything(),
        )
    }

    fn req(action: Action) -> AccessRequest {
        AccessRequest::new(
            EntityId::new("entry", "sensors"),
            EntityId::new("asset", "ecu"),
            action,
        )
    }

    #[test]
    fn effect_invert_and_display() {
        assert_eq!(Effect::Allow.invert(), Effect::Deny);
        assert_eq!(Effect::Deny.invert(), Effect::Allow);
        assert_eq!(Effect::Allow.to_string(), "allow");
    }

    #[test]
    fn rule_applies_checks_all_dimensions() {
        let ctx = EvalContext::new().with_mode("normal");
        let r = Rule::new(
            "r1",
            Effect::Allow,
            ActionSet::only(Action::Read),
            EntityMatcher::new("entry", Pattern::Any),
            EntityMatcher::new("asset", Pattern::Exact("ecu".into())),
        )
        .when(Condition::InMode("normal".into()));
        assert!(r.applies(&req(Action::Read), &ctx));
        // wrong action
        assert!(!r.applies(&req(Action::Write), &ctx));
        // wrong mode
        assert!(!r.applies(&req(Action::Read), &EvalContext::new().with_mode("fail-safe")));
        // wrong object
        let other = AccessRequest::new(
            EntityId::new("entry", "sensors"),
            EntityId::new("asset", "eps"),
            Action::Read,
        );
        assert!(!r.applies(&other, &ctx));
        // wrong subject namespace
        let alien = AccessRequest::new(
            EntityId::new("proc", "sensors"),
            EntityId::new("asset", "ecu"),
            Action::Read,
        );
        assert!(!r.applies(&alien, &ctx));
    }

    #[test]
    fn rule_display_forms() {
        let r = rule("r", Effect::Deny)
            .when(Condition::InMode("normal".into()))
            .with_priority(5);
        let s = r.to_string();
        assert!(s.starts_with("deny read on *:* from *:*"));
        assert!(s.contains("when mode == normal"));
        assert!(s.contains("priority 5"));
    }

    #[test]
    fn policy_rejects_duplicate_rule_ids() {
        let p = Policy::new("p", 1)
            .add_rule(rule("a", Effect::Allow))
            .unwrap();
        let err = p.add_rule(rule("a", Effect::Deny)).unwrap_err();
        assert_eq!(err, PolicyError::DuplicateRule { id: "a".into() });
    }

    #[test]
    fn policy_defaults_to_deny() {
        let p = Policy::new("p", 1);
        assert_eq!(p.default_effect(), Effect::Deny);
        assert!(p.is_empty());
        let p = p.with_default(Effect::Allow);
        assert_eq!(p.default_effect(), Effect::Allow);
    }

    #[test]
    fn policy_set_upsert_and_remove() {
        let mut set = PolicySet::new();
        assert!(!set.upsert(Policy::new("a", 1)));
        assert!(set.upsert(Policy::new("a", 2)));
        assert_eq!(set.policy("a").unwrap().version(), 2);
        assert!(set.remove("a").is_some());
        assert!(set.remove("a").is_none());
    }

    #[test]
    fn policy_set_default_effect_least_privilege() {
        let mut set = PolicySet::new();
        assert_eq!(set.default_effect(), Effect::Deny, "empty set denies");
        set.add(Policy::new("open", 1).with_default(Effect::Allow));
        assert_eq!(set.default_effect(), Effect::Allow);
        set.add(Policy::new("strict", 1)); // default deny
        assert_eq!(set.default_effect(), Effect::Deny, "any deny wins");
    }

    #[test]
    fn policy_set_rules_iterate_with_owner() {
        let a = Policy::new("a", 1).add_rule(rule("r1", Effect::Allow)).unwrap();
        let b = Policy::new("b", 1).add_rule(rule("r2", Effect::Deny)).unwrap();
        let set: PolicySet = [a, b].into_iter().collect();
        let owners: Vec<&str> = set.rules().map(|(o, _)| o).collect();
        assert_eq!(owners, vec!["a", "b"]);
        assert_eq!(set.rule_count(), 2);
    }

    #[test]
    fn rate_keys_aggregate_across_policies() {
        let r = Rule::new(
            "r",
            Effect::Deny,
            ActionSet::all(),
            EntityMatcher::anything(),
            EntityMatcher::anything(),
        )
        .when(Condition::RateAtMost { key: "flood".into(), max_per_sec: 10 });
        let p = Policy::new("p", 1).add_rule(r).unwrap();
        let set = PolicySet::from_policy(p);
        assert!(set.rate_keys().contains("flood"));
    }

    #[test]
    fn policy_display_lists_rules() {
        let p = Policy::new("demo", 3)
            .add_rule(rule("r1", Effect::Allow))
            .unwrap();
        let text = p.to_string();
        assert!(text.contains("policy \"demo\" version 3"));
        assert!(text.contains("allow read"));
    }
}
