//! Decision audit trail.
//!
//! Every decision the engine takes can be recorded for repudiation defence
//! (the "R" in STRIDE) and for the attack-matrix experiments, which assert on
//! audit contents. The log is a bounded ring buffer.

use crate::policy::Effect;
use crate::request::AccessRequest;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One audited decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Caller-supplied timestamp (microseconds; 0 when untimed).
    pub time_us: u64,
    /// The request that was decided.
    pub request: AccessRequest,
    /// The decided effect.
    pub effect: Effect,
    /// The rule that determined the outcome, as `policy.rule`, or `None`
    /// for default decisions.
    pub rule: Option<String>,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [{}us] {} => {} ({})",
            self.seq,
            self.time_us,
            self.request,
            self.effect,
            self.rule.as_deref().unwrap_or("default")
        )
    }
}

/// A bounded ring buffer of [`AuditRecord`]s with aggregate counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditLog {
    records: VecDeque<AuditRecord>,
    capacity: usize,
    next_seq: u64,
    allows: u64,
    denies: u64,
    defaults: u64,
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl AuditLog {
    /// Default retained-record bound.
    pub const DEFAULT_CAPACITY: usize = 16_384;

    /// Creates a log retaining at most `capacity` records (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        AuditLog {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            allows: 0,
            denies: 0,
            defaults: 0,
        }
    }

    /// Appends a record, evicting the oldest at capacity.
    pub fn record(
        &mut self,
        time_us: u64,
        request: AccessRequest,
        effect: Effect,
        rule: Option<String>,
    ) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        match effect {
            Effect::Allow => self.allows += 1,
            Effect::Deny => self.denies += 1,
        }
        if rule.is_none() {
            self.defaults += 1;
        }
        self.records.push_back(AuditRecord {
            seq: self.next_seq,
            time_us,
            request,
            effect,
            rule,
        });
        self.next_seq += 1;
    }

    /// Pushes an already-materialised record, preserving its sequence
    /// number (used by the engine when merging its sharded buffers).
    pub(crate) fn push_materialised(&mut self, record: AuditRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }

    /// Overwrites the aggregate counters (used by the engine, whose
    /// authoritative counters are its own atomics).
    pub(crate) fn set_aggregates(&mut self, total: u64, allows: u64, denies: u64, defaults: u64) {
        self.next_seq = total;
        self.allows = allows;
        self.denies = denies;
        self.defaults = defaults;
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded (and retained).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total allow decisions ever recorded.
    pub fn allows(&self) -> u64 {
        self.allows
    }

    /// Total deny decisions ever recorded.
    pub fn denies(&self) -> u64 {
        self.denies
    }

    /// Total decisions that fell through to the default effect.
    pub fn defaults(&self) -> u64 {
        self.defaults
    }

    /// Total decisions ever recorded (including evicted).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// The most recent record.
    pub fn last(&self) -> Option<&AuditRecord> {
        self.records.back()
    }

    /// Records whose determining rule starts with `prefix` (e.g. a policy
    /// name).
    pub fn by_rule_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a AuditRecord> {
        self.records.iter().filter(move |r| {
            r.rule
                .as_deref()
                .map(|id| id.starts_with(prefix))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::entity::EntityId;

    fn req() -> AccessRequest {
        AccessRequest::new(
            EntityId::new("entry", "x"),
            EntityId::new("asset", "y"),
            Action::Read,
        )
    }

    #[test]
    fn records_and_counts() {
        let mut log = AuditLog::default();
        log.record(1, req(), Effect::Allow, Some("p.r1".into()));
        log.record(2, req(), Effect::Deny, None);
        assert_eq!(log.len(), 2);
        assert_eq!(log.allows(), 1);
        assert_eq!(log.denies(), 1);
        assert_eq!(log.defaults(), 1);
        assert_eq!(log.total(), 2);
        assert_eq!(log.last().unwrap().seq, 1);
    }

    #[test]
    fn eviction_preserves_counters_and_seq() {
        let mut log = AuditLog::with_capacity(2);
        for i in 0..5 {
            log.record(i, req(), Effect::Deny, None);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.total(), 5);
        assert_eq!(log.denies(), 5);
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn rule_prefix_query() {
        let mut log = AuditLog::default();
        log.record(0, req(), Effect::Deny, Some("ecu-protection.r1".into()));
        log.record(0, req(), Effect::Deny, Some("locks.r9".into()));
        log.record(0, req(), Effect::Allow, None);
        assert_eq!(log.by_rule_prefix("ecu-protection").count(), 1);
        assert_eq!(log.by_rule_prefix("locks").count(), 1);
        assert_eq!(log.by_rule_prefix("nope").count(), 0);
    }

    #[test]
    fn display_shows_rule_or_default() {
        let mut log = AuditLog::default();
        log.record(7, req(), Effect::Allow, Some("p.r".into()));
        let s = log.last().unwrap().to_string();
        assert!(s.contains("(p.r)"));
        log.record(8, req(), Effect::Deny, None);
        assert!(log.last().unwrap().to_string().contains("(default)"));
    }

    #[test]
    fn zero_capacity_clamps() {
        let mut log = AuditLog::with_capacity(0);
        log.record(0, req(), Effect::Allow, None);
        log.record(1, req(), Effect::Allow, None);
        assert_eq!(log.len(), 1);
    }
}
