//! # polsec-core — the policy-based security model
//!
//! This crate implements the paper's contribution: a security model expressed
//! as **machine-enforceable policies** derived from threat modelling, with a
//! configurable evaluation engine and a signed field-update mechanism.
//!
//! The pieces, in dependency order:
//!
//! * [`Action`] / [`ActionSet`] — the access verbs (read, write, execute,
//!   configure),
//! * [`EntityId`] / [`EntityMatcher`] — namespaced subject/object names and
//!   the patterns rules match them with (exact, prefix, numeric id range),
//! * [`Condition`] — behavioural/situational predicates: operating mode,
//!   system state, rate limits, boolean combinators,
//! * [`Rule`] / [`Policy`] / [`PolicySet`] — the policy language's abstract
//!   syntax,
//! * [`PolicyEngine`] — the evaluation engine with three combining
//!   strategies (deny-overrides, first-match, priority-order), an audit
//!   trail and a subject index,
//! * [`dsl`] — a textual policy language with a lexer, recursive-descent
//!   parser and canonical printer (round-trip tested),
//! * [`compile_security_model`] — the bridge from `polsec-model`'s threat
//!   modelling output to enforceable policies (the Fig. 1 "device security
//!   model … defined as access control policies"),
//! * [`bundle`] / [`update`] — versioned, HMAC-SHA-256-signed policy bundles
//!   and the device-side store with apply/rollback (the OEM "policy
//!   definition update" of §IV),
//! * [`sign`] — a self-contained SHA-256/HMAC implementation (simulation-
//!   grade, test-vector checked; **not** production crypto),
//! * [`intern`] / [`cache`] — the decision fast path's substrate: global
//!   string interning ([`Symbol`]) and the generation-tagged lock-free
//!   cache shared with the enforcement crates (DESIGN.md §6).
//!
//! # Example
//!
//! ```
//! use polsec_core::{Action, AccessRequest, Decision, Effect, EntityId, EvalContext, PolicyEngine};
//! use polsec_core::dsl::parse_policy;
//!
//! let policy = parse_policy(r#"
//!     policy "ecu-protection" version 1 {
//!         default deny;
//!         allow read on asset:ev-ecu from entry:*;
//!         deny write on asset:ev-ecu from entry:* when mode == normal;
//!     }
//! "#)?;
//!
//! let engine = PolicyEngine::from_policy(policy);
//! let ctx = EvalContext::new().with_mode("normal");
//! let read = AccessRequest::new(
//!     EntityId::parse("entry:sensors")?,
//!     EntityId::parse("asset:ev-ecu")?,
//!     Action::Read,
//! );
//! assert_eq!(engine.decide(&read, &ctx).effect(), Effect::Allow);
//! # Ok::<(), polsec_core::PolicyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod audit;
pub mod bundle;
pub mod cache;
pub mod compiler;
pub mod condition;
pub mod dsl;
pub mod engine;
pub mod entity;
pub mod error;
pub mod intern;
pub mod policy;
pub mod request;
pub mod sign;
pub mod update;

pub use action::{Action, ActionSet};
pub use audit::{AuditLog, AuditRecord};
pub use bundle::{PolicyBundle, SignedBundle};
pub use compiler::compile_security_model;
pub use cache::GenCache;
pub use condition::{Condition, RateSource};
pub use engine::{
    CombiningStrategy, Decision, EngineStats, LoadMode, PolicyEngine, RuleCacheability,
};
pub use intern::Symbol;
pub use entity::{EntityId, EntityMatcher, Pattern};
pub use error::PolicyError;
pub use policy::{Effect, Policy, PolicySet, Rule};
pub use request::{AccessRequest, EvalContext};
pub use update::{DevicePolicyStore, UpdateOutcome};
