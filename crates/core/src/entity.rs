//! Entities and entity patterns.
//!
//! Policy subjects and objects are namespaced names — `entry:sensors`,
//! `asset:ev-ecu`, `can:0x1A0`, `proc:media-player` — so one engine can
//! govern CAN identifiers, threat-model assets and MAC processes uniformly.
//! Rules match entities with [`Pattern`]s: exact, wildcard, prefix, or a
//! numeric id range (the form the HPE compiles into id/mask filter entries).
//!
//! Entity names are **interned** (see [`crate::intern`]): an [`EntityId`]
//! is two 4-byte [`Symbol`] handles, so ids are `Copy`, compare in O(1),
//! and constructing one from already-seen strings allocates nothing. This
//! is the foundation of the engine's zero-allocation decision path
//! (DESIGN.md §6).

use crate::error::PolicyError;
use crate::intern::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete namespaced entity name.
///
/// # Example
/// ```
/// use polsec_core::EntityId;
/// let e = EntityId::parse("can:0x1A0")?;
/// assert_eq!(e.namespace(), "can");
/// assert_eq!(e.name(), "0x1A0");
/// assert_eq!(e.numeric_name(), Some(0x1A0));
/// # Ok::<(), polsec_core::PolicyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EntityId {
    namespace: Symbol,
    name: Symbol,
}

impl EntityId {
    /// Creates an entity from namespace and name parts, interning both.
    pub fn new(namespace: impl AsRef<str>, name: impl AsRef<str>) -> Self {
        EntityId {
            namespace: Symbol::intern(namespace.as_ref()),
            name: Symbol::intern(name.as_ref()),
        }
    }

    /// Parses `namespace:name`.
    ///
    /// # Errors
    /// [`PolicyError::MalformedEntity`] when the colon or either part is
    /// missing.
    pub fn parse(s: &str) -> Result<Self, PolicyError> {
        let (ns, name) = s
            .split_once(':')
            .ok_or_else(|| PolicyError::MalformedEntity { input: s.to_string() })?;
        if ns.is_empty() || name.is_empty() {
            return Err(PolicyError::MalformedEntity { input: s.to_string() });
        }
        Ok(EntityId::new(ns.trim(), name.trim()))
    }

    /// The namespace part.
    pub fn namespace(&self) -> &'static str {
        self.namespace.as_str()
    }

    /// The name part.
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The interned namespace handle.
    pub fn namespace_symbol(&self) -> Symbol {
        self.namespace
    }

    /// The interned name handle.
    pub fn name_symbol(&self) -> Symbol {
        self.name
    }

    /// The name parsed as a number, accepting decimal or `0x` hex.
    pub fn numeric_name(&self) -> Option<u32> {
        parse_number(self.name())
    }
}

// Symbol handles order by interning age, not text, so ordering is defined
// explicitly over the resolved strings to keep lexical semantics.
impl PartialOrd for EntityId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EntityId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.namespace(), self.name()).cmp(&(other.namespace(), other.name()))
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.namespace(), self.name())
    }
}

fn parse_number(s: &str) -> Option<u32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// How a rule matches an entity's name within a namespace.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Matches any name (`*`).
    Any,
    /// Matches exactly this name.
    Exact(String),
    /// Matches names starting with this prefix (`sensor-*`).
    Prefix(String),
    /// Matches names that parse as numbers within `[lo, hi]`
    /// (`0x100-0x1FF`).
    IdRange {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
}

impl Pattern {
    /// Whether the pattern matches a name.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            Pattern::Any => true,
            Pattern::Exact(e) => e == name,
            Pattern::Prefix(p) => name.starts_with(p.as_str()),
            Pattern::IdRange { lo, hi } => match parse_number(name) {
                Some(v) => (*lo..=*hi).contains(&v),
                None => false,
            },
        }
    }

    /// Parses a pattern string: `*`, `prefix-*`, `0xLO-0xHI`, or an exact
    /// name.
    ///
    /// # Errors
    /// [`PolicyError::MalformedRange`] for a range with `lo > hi` or
    /// unparsable bounds.
    pub fn parse(s: &str) -> Result<Self, PolicyError> {
        let s = s.trim();
        if s == "*" {
            return Ok(Pattern::Any);
        }
        if let Some(prefix) = s.strip_suffix('*') {
            if !prefix.is_empty() {
                return Ok(Pattern::Prefix(prefix.to_string()));
            }
        }
        // A range is two numeric bounds joined by '-' where both sides parse.
        if let Some((lo_s, hi_s)) = s.split_once('-') {
            if let (Some(lo), Some(hi)) = (parse_number(lo_s), parse_number(hi_s)) {
                if lo > hi {
                    return Err(PolicyError::MalformedRange { input: s.to_string() });
                }
                return Ok(Pattern::IdRange { lo, hi });
            }
        }
        Ok(Pattern::Exact(s.to_string()))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Any => f.write_str("*"),
            Pattern::Exact(e) => f.write_str(e),
            Pattern::Prefix(p) => write!(f, "{p}*"),
            Pattern::IdRange { lo, hi } => write!(f, "0x{lo:X}-0x{hi:X}"),
        }
    }
}

/// A subject/object matcher: a namespace (exact or any) plus a name pattern.
///
/// The namespace constraint is stored interned, so the namespace test on
/// the match path is a single integer comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EntityMatcher {
    namespace: Option<Symbol>,
    pattern: Pattern,
}

impl EntityMatcher {
    /// Matcher for a specific namespace and pattern.
    pub fn new(namespace: impl AsRef<str>, pattern: Pattern) -> Self {
        EntityMatcher {
            namespace: Some(Symbol::intern(namespace.as_ref())),
            pattern,
        }
    }

    /// Matcher crossing all namespaces.
    pub fn any_namespace(pattern: Pattern) -> Self {
        EntityMatcher {
            namespace: None,
            pattern,
        }
    }

    /// Matches everything (`*:*`).
    pub fn anything() -> Self {
        EntityMatcher {
            namespace: None,
            pattern: Pattern::Any,
        }
    }

    /// Matcher for exactly one entity.
    pub fn exact(e: &EntityId) -> Self {
        EntityMatcher {
            namespace: Some(e.namespace_symbol()),
            pattern: Pattern::Exact(e.name().to_string()),
        }
    }

    /// Parses `namespace:pattern` (namespace `*` = any namespace).
    ///
    /// # Errors
    /// [`PolicyError::MalformedEntity`] / [`PolicyError::MalformedRange`].
    pub fn parse(s: &str) -> Result<Self, PolicyError> {
        let (ns, pat) = s
            .split_once(':')
            .ok_or_else(|| PolicyError::MalformedEntity { input: s.to_string() })?;
        let ns = ns.trim();
        if ns.is_empty() || pat.trim().is_empty() {
            return Err(PolicyError::MalformedEntity { input: s.to_string() });
        }
        let pattern = Pattern::parse(pat)?;
        if ns == "*" {
            Ok(EntityMatcher::any_namespace(pattern))
        } else {
            Ok(EntityMatcher::new(ns, pattern))
        }
    }

    /// The namespace constraint (`None` = any).
    pub fn namespace(&self) -> Option<&'static str> {
        self.namespace.map(Symbol::as_str)
    }

    /// The name pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Whether the matcher matches an entity.
    #[inline]
    pub fn matches(&self, e: &EntityId) -> bool {
        if let Some(ns) = self.namespace {
            if ns != e.namespace_symbol() {
                return false;
            }
        }
        self.pattern.matches(e.name())
    }

    /// Whether this matcher can only ever match a single exact entity —
    /// used by the engine to index rules.
    pub fn exact_key(&self) -> Option<(String, String)> {
        match (&self.namespace, &self.pattern) {
            (Some(ns), Pattern::Exact(name)) => Some((ns.as_str().to_string(), name.clone())),
            _ => None,
        }
    }

    /// The interned form of [`EntityMatcher::exact_key`], used to build the
    /// engine's subject index without owning strings.
    pub fn exact_key_symbols(&self) -> Option<(Symbol, Symbol)> {
        match (&self.namespace, &self.pattern) {
            (Some(ns), Pattern::Exact(name)) => Some((*ns, Symbol::intern(name))),
            _ => None,
        }
    }
}

impl fmt::Display for EntityMatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.namespace {
            Some(ns) => write!(f, "{ns}:{}", self.pattern),
            None => write!(f, "*:{}", self.pattern),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_parse_and_display() {
        let e = EntityId::parse("asset:ev-ecu").unwrap();
        assert_eq!(e.namespace(), "asset");
        assert_eq!(e.name(), "ev-ecu");
        assert_eq!(e.to_string(), "asset:ev-ecu");
        assert_eq!(e.numeric_name(), None);
    }

    #[test]
    fn entity_numeric_names() {
        assert_eq!(EntityId::parse("can:0x1A0").unwrap().numeric_name(), Some(0x1A0));
        assert_eq!(EntityId::parse("can:416").unwrap().numeric_name(), Some(416));
    }

    #[test]
    fn entity_parse_rejects_malformed() {
        for bad in ["no-colon", ":name", "ns:", ""] {
            assert!(
                matches!(EntityId::parse(bad), Err(PolicyError::MalformedEntity { .. })),
                "{bad}"
            );
        }
    }

    #[test]
    fn entity_ids_are_copy_and_interned() {
        let a = EntityId::new("entry", "sensors");
        let b = a; // Copy
        assert_eq!(a, b);
        let c = EntityId::new("entry", "sensors");
        assert_eq!(a.name_symbol(), c.name_symbol());
        assert_eq!(a.namespace_symbol(), c.namespace_symbol());
    }

    #[test]
    fn entity_ordering_is_lexical() {
        let mut v = [
            EntityId::new("zeta", "a"),
            EntityId::new("alpha", "b"),
            EntityId::new("alpha", "a"),
        ];
        v.sort();
        assert_eq!(v[0], EntityId::new("alpha", "a"));
        assert_eq!(v[1], EntityId::new("alpha", "b"));
        assert_eq!(v[2], EntityId::new("zeta", "a"));
    }

    #[test]
    fn pattern_any_exact_prefix() {
        assert!(Pattern::Any.matches("anything"));
        assert!(Pattern::Exact("abc".into()).matches("abc"));
        assert!(!Pattern::Exact("abc".into()).matches("abcd"));
        assert!(Pattern::Prefix("sensor-".into()).matches("sensor-1"));
        assert!(!Pattern::Prefix("sensor-".into()).matches("actuator-1"));
    }

    #[test]
    fn pattern_id_range() {
        let p = Pattern::IdRange { lo: 0x100, hi: 0x1FF };
        assert!(p.matches("0x100"));
        assert!(p.matches("0x1FF"));
        assert!(p.matches("300")); // decimal 300 = 0x12C, inside
        assert!(!p.matches("0x200"));
        assert!(!p.matches("not-a-number"));
    }

    #[test]
    fn pattern_parse_forms() {
        assert_eq!(Pattern::parse("*").unwrap(), Pattern::Any);
        assert_eq!(Pattern::parse("abc*").unwrap(), Pattern::Prefix("abc".into()));
        assert_eq!(
            Pattern::parse("0x10-0x20").unwrap(),
            Pattern::IdRange { lo: 0x10, hi: 0x20 }
        );
        assert_eq!(Pattern::parse("plain").unwrap(), Pattern::Exact("plain".into()));
        // a lone '*' suffix on empty prefix is Any, handled above; '-' words
        // that don't parse as numbers are exact names:
        assert_eq!(
            Pattern::parse("ev-ecu").unwrap(),
            Pattern::Exact("ev-ecu".into())
        );
    }

    #[test]
    fn pattern_parse_rejects_inverted_range() {
        assert!(matches!(
            Pattern::parse("0x20-0x10"),
            Err(PolicyError::MalformedRange { .. })
        ));
    }

    #[test]
    fn pattern_display_round_trip() {
        for s in ["*", "abc*", "0x10-0x20", "plain"] {
            let p = Pattern::parse(s).unwrap();
            let p2 = Pattern::parse(&p.to_string()).unwrap();
            assert_eq!(p, p2, "{s}");
        }
    }

    #[test]
    fn matcher_namespace_discipline() {
        let m = EntityMatcher::parse("entry:*").unwrap();
        assert!(m.matches(&EntityId::new("entry", "sensors")));
        assert!(!m.matches(&EntityId::new("asset", "sensors")));
        let any = EntityMatcher::parse("*:sensors").unwrap();
        assert!(any.matches(&EntityId::new("entry", "sensors")));
        assert!(any.matches(&EntityId::new("asset", "sensors")));
    }

    #[test]
    fn matcher_exact_and_exact_key() {
        let e = EntityId::new("asset", "eps");
        let m = EntityMatcher::exact(&e);
        assert!(m.matches(&e));
        assert_eq!(m.exact_key(), Some(("asset".into(), "eps".into())));
        assert_eq!(
            m.exact_key_symbols(),
            Some((e.namespace_symbol(), e.name_symbol()))
        );
        assert_eq!(EntityMatcher::anything().exact_key(), None);
        assert_eq!(
            EntityMatcher::parse("can:0x1-0x2").unwrap().exact_key(),
            None
        );
    }

    #[test]
    fn matcher_display() {
        assert_eq!(EntityMatcher::parse("can:0x10-0x1F").unwrap().to_string(), "can:0x10-0x1F");
        assert_eq!(EntityMatcher::anything().to_string(), "*:*");
    }

    #[test]
    fn anything_matches_everything() {
        let m = EntityMatcher::anything();
        assert!(m.matches(&EntityId::new("a", "b")));
        assert!(m.matches(&EntityId::new("x", "0x1")));
    }
}
