//! # polsec-analyze — static policy analysis
//!
//! Lints compiled policy bundles and the layered fleet configuration
//! *without executing a single frame*. Two layers:
//!
//! * **Layer 1** ([`analyze_set`]) works over one compiled
//!   [`polsec_core::PolicySet`]: rule shadowing and contradictions under
//!   the active combining strategy (via the subsumption lattice in
//!   [`lattice`]), dead conditions and mode-unreachable rules (via the
//!   exact small-formula solver in [`sat`] and the [`ModeGraph`]), and an
//!   independent cacheability computation cross-checked against the
//!   engine's load-time analysis.
//! * **Layer 2** ([`analyze_ladder`]) works over the fleet's enforcement
//!   ladder description: for every CAN identifier × direction × origin
//!   class it computes what the gateway whitelist, segment HPEs, node
//!   HPEs and application policy would each do, and reports coverage
//!   holes (attack classes no enforcing rung stops), dead whitelist
//!   entries, and identifier-level rung redundancy.
//!
//! Findings are structured ([`Finding`]), deterministically ordered
//! ([`Report`]), and rendered as text or JSON; the `polsec-analyze` binary
//! turns `Error` findings (and, under `--deny-warnings`, `Warning`s) into
//! a nonzero exit status for CI gating. [`strict_validator`] plugs the
//! same Layer-1 analyses into [`polsec_core::LoadMode::Strict`] so an
//! engine can refuse to hot-load a defective OTA bundle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avc_lint;
pub mod finding;
pub mod lattice;
pub mod layer1;
pub mod layer2;
pub mod modes;
pub mod sat;

pub use avc_lint::lint_avc;
pub use finding::{Finding, FindingKind, Report, Severity};
pub use layer1::{
    analyze_set, analyze_with_engine, cacheability_crosscheck, strict_validator, AnalysisOptions,
};
pub use layer2::{
    analyze_ladder, CoverageRow, Direction, LadderReport, LadderSpec, OriginClass, RungOutcome,
    RungOutcomes,
};
pub use modes::ModeGraph;
pub use sat::{mentioned_modes, satisfiable};
