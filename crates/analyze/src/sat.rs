//! Condition satisfiability via negation normal form and interval
//! analysis.
//!
//! Conditions are small boolean formulas over three atom families: mode
//! equality, state equality, and rate windows. A condition is *dead* if no
//! evaluation context can satisfy it (`rate(k) <= 5 && !(rate(k) <= 10)`),
//! and *mode-unreachable* if every satisfying context requires an operating
//! mode the [`crate::ModeGraph`] can never enter. The solver pushes
//! negations to the atoms, then explores disjunction branches with a
//! backtracking assignment:
//!
//! * at most one positive mode per conjunction (a context has one mode),
//! * state keys map to at most one required value, with a negative set,
//! * rate keys carry an integer interval `[lo, hi]` that `RateAtMost`
//!   shrinks from above and its negation from below.
//!
//! Exhaustive branch exploration is exponential in the number of nested
//! disjunctions; policy conditions are tiny (the deepest shipped condition
//! has three conjuncts), so this is exact rather than approximate.

use polsec_core::Condition;
use std::collections::{BTreeMap, BTreeSet};

/// Negation normal form: negations only on atoms.
enum Nnf {
    True,
    False,
    /// An atom (`InMode` / `StateEquals` / `RateAtMost`), possibly negated.
    Lit { neg: bool, atom: Condition },
    All(Vec<Nnf>),
    Any(Vec<Nnf>),
}

fn nnf(c: &Condition, neg: bool) -> Nnf {
    match c {
        Condition::Always => {
            if neg {
                Nnf::False
            } else {
                Nnf::True
            }
        }
        Condition::Not(inner) => nnf(inner, !neg),
        Condition::All(cs) => {
            let kids = cs.iter().map(|x| nnf(x, neg)).collect();
            if neg {
                Nnf::Any(kids)
            } else {
                Nnf::All(kids)
            }
        }
        Condition::AnyOf(cs) => {
            let kids = cs.iter().map(|x| nnf(x, neg)).collect();
            if neg {
                Nnf::All(kids)
            } else {
                Nnf::Any(kids)
            }
        }
        atom => Nnf::Lit { neg, atom: atom.clone() },
    }
}

/// A partial assignment over the atom families; `add` maintains
/// consistency incrementally.
#[derive(Clone, Default)]
struct Assign {
    mode: Option<String>,
    not_modes: BTreeSet<String>,
    state: BTreeMap<String, String>,
    state_not: BTreeMap<String, BTreeSet<String>>,
    rate_lo: BTreeMap<String, u64>,
    rate_hi: BTreeMap<String, u64>,
}

impl Assign {
    /// Folds one literal in; `false` means contradiction.
    fn add(&mut self, neg: bool, atom: &Condition, modes: Option<&BTreeSet<String>>) -> bool {
        match atom {
            Condition::InMode(m) => {
                if neg {
                    if self.mode.as_deref() == Some(m.as_str()) {
                        return false;
                    }
                    self.not_modes.insert(m.clone());
                } else {
                    if let Some(universe) = modes {
                        if !universe.contains(m) {
                            return false;
                        }
                    }
                    if self.not_modes.contains(m) {
                        return false;
                    }
                    match &self.mode {
                        Some(prev) if prev != m => return false,
                        _ => self.mode = Some(m.clone()),
                    }
                }
                true
            }
            Condition::StateEquals { key, value } => {
                if neg {
                    if self.state.get(key) == Some(value) {
                        return false;
                    }
                    self.state_not.entry(key.clone()).or_default().insert(value.clone());
                } else {
                    if self
                        .state_not
                        .get(key)
                        .is_some_and(|not| not.contains(value))
                    {
                        return false;
                    }
                    match self.state.get(key) {
                        Some(prev) if prev != value => return false,
                        _ => {
                            self.state.insert(key.clone(), value.clone());
                        }
                    }
                }
                true
            }
            Condition::RateAtMost { key, max_per_sec } => {
                let m = u64::from(*max_per_sec);
                if neg {
                    // rate(key) > m  ⇒  lo := max(lo, m + 1)
                    let lo = self.rate_lo.entry(key.clone()).or_insert(0);
                    *lo = (*lo).max(m + 1);
                } else {
                    let hi = self.rate_hi.entry(key.clone()).or_insert(u64::MAX);
                    *hi = (*hi).min(m);
                }
                let lo = self.rate_lo.get(key).copied().unwrap_or(0);
                let hi = self.rate_hi.get(key).copied().unwrap_or(u64::MAX);
                lo <= hi
            }
            // Non-atoms never reach `add`.
            _ => true,
        }
    }
}

/// Depth-first exploration: conjuncts are folded into the assignment;
/// the first disjunction found branches the search.
fn sat_rec(queue: &mut Vec<&Nnf>, mut assign: Assign, modes: Option<&BTreeSet<String>>) -> bool {
    while let Some(n) = queue.pop() {
        match n {
            Nnf::True => {}
            Nnf::False => return false,
            Nnf::All(kids) => queue.extend(kids.iter()),
            Nnf::Lit { neg, atom } => {
                if !assign.add(*neg, atom, modes) {
                    return false;
                }
            }
            Nnf::Any(kids) => {
                return kids.iter().any(|k| {
                    let mut branch = queue.clone();
                    branch.push(k);
                    sat_rec(&mut branch, assign.clone(), modes)
                });
            }
        }
    }
    true
}

/// Whether any evaluation context satisfies the condition. With
/// `reachable_modes = Some(universe)`, positive mode requirements must name
/// a mode in the universe (negated modes are unrestricted: a context may
/// also carry no mode at all).
pub fn satisfiable(c: &Condition, reachable_modes: Option<&BTreeSet<String>>) -> bool {
    let root = nnf(c, false);
    sat_rec(&mut vec![&root], Assign::default(), reachable_modes)
}

/// Every mode name the condition mentions (positively or under negation).
pub fn mentioned_modes(c: &Condition) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_modes(c, &mut out);
    out
}

fn collect_modes(c: &Condition, out: &mut BTreeSet<String>) {
    match c {
        Condition::InMode(m) => {
            out.insert(m.clone());
        }
        Condition::All(cs) | Condition::AnyOf(cs) => {
            for x in cs {
                collect_modes(x, out);
            }
        }
        Condition::Not(inner) => collect_modes(inner, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mode(m: &str) -> Condition {
        Condition::InMode(m.into())
    }

    fn rate(key: &str, max: u32) -> Condition {
        Condition::RateAtMost { key: key.into(), max_per_sec: max }
    }

    fn not(c: Condition) -> Condition {
        Condition::Not(Box::new(c))
    }

    #[test]
    fn atoms_are_satisfiable() {
        assert!(satisfiable(&Condition::Always, None));
        assert!(satisfiable(&mode("normal"), None));
        assert!(satisfiable(&rate("k", 0), None));
        assert!(!satisfiable(&not(Condition::Always), None));
    }

    #[test]
    fn two_positive_modes_conflict() {
        let c = Condition::All(vec![mode("normal"), mode("fail-safe")]);
        assert!(!satisfiable(&c, None));
        let d = Condition::AnyOf(vec![mode("normal"), mode("fail-safe")]);
        assert!(satisfiable(&d, None));
    }

    #[test]
    fn mode_and_its_negation_conflict() {
        let c = Condition::All(vec![mode("normal"), not(mode("normal"))]);
        assert!(!satisfiable(&c, None));
        let ok = Condition::All(vec![mode("normal"), not(mode("fail-safe"))]);
        assert!(satisfiable(&ok, None));
    }

    #[test]
    fn empty_rate_window_is_unsat() {
        // rate <= 5 && rate > 10
        let c = Condition::All(vec![rate("k", 5), not(rate("k", 10))]);
        assert!(!satisfiable(&c, None));
        // rate <= 10 && rate > 5 is a real window
        let ok = Condition::All(vec![rate("k", 10), not(rate("k", 5))]);
        assert!(satisfiable(&ok, None));
        // distinct keys never interact
        let keys = Condition::All(vec![rate("a", 5), not(rate("b", 10))]);
        assert!(satisfiable(&keys, None));
    }

    #[test]
    fn state_conflicts() {
        let eq = |k: &str, v: &str| Condition::StateEquals { key: k.into(), value: v.into() };
        assert!(!satisfiable(&Condition::All(vec![eq("crash", "true"), eq("crash", "false")]), None));
        assert!(!satisfiable(&Condition::All(vec![eq("crash", "true"), not(eq("crash", "true"))]), None));
        assert!(satisfiable(&Condition::All(vec![eq("crash", "true"), not(eq("crash", "false"))]), None));
        assert!(satisfiable(&Condition::All(vec![eq("crash", "true"), eq("stolen", "false")]), None));
    }

    #[test]
    fn mode_universe_restricts_positives_only() {
        let universe: BTreeSet<String> =
            ["normal".to_string(), "fail-safe".to_string()].into();
        assert!(satisfiable(&mode("normal"), Some(&universe)));
        assert!(!satisfiable(&mode("factory"), Some(&universe)));
        // negated unknown modes stay satisfiable
        assert!(satisfiable(&not(mode("factory")), Some(&universe)));
        // a disjunction survives if one arm is reachable
        let c = Condition::AnyOf(vec![mode("factory"), mode("normal")]);
        assert!(satisfiable(&c, Some(&universe)));
        let d = Condition::AnyOf(vec![mode("factory"), mode("assembly")]);
        assert!(!satisfiable(&d, Some(&universe)));
    }

    #[test]
    fn disjunction_branches_keep_independent_assignments() {
        // (mode normal || mode fail-safe) && !(mode normal) is satisfiable
        // via the second arm only.
        let c = Condition::All(vec![
            Condition::AnyOf(vec![mode("normal"), mode("fail-safe")]),
            not(mode("normal")),
        ]);
        assert!(satisfiable(&c, None));
    }

    #[test]
    fn mentioned_modes_collects_all() {
        let c = Condition::All(vec![
            mode("normal"),
            not(mode("factory")),
            Condition::AnyOf(vec![mode("fail-safe"), rate("k", 1)]),
        ]);
        let m = mentioned_modes(&c);
        assert_eq!(
            m.into_iter().collect::<Vec<_>>(),
            vec!["factory".to_string(), "fail-safe".into(), "normal".into()]
        );
    }
}
