//! Mode-transition graphs for reachability analysis.
//!
//! A rule guarded by `mode == "factory"` is dead on a vehicle whose
//! security model can never enter a mode of that name. The graph is the
//! analyzer's model of the *dynamic* mode machine: nodes are mode names,
//! edges are legitimate transitions, and reachability from the initial
//! mode defines the universe the satisfiability check uses.

use polsec_car::CarMode;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A directed graph of operating-mode transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeGraph {
    initial: String,
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl ModeGraph {
    /// An empty graph whose only (trivially reachable) mode is `initial`.
    pub fn new(initial: impl Into<String>) -> Self {
        let initial = initial.into();
        let mut edges = BTreeMap::new();
        edges.insert(initial.clone(), BTreeSet::new());
        ModeGraph { initial, edges }
    }

    /// Declares a mode with no transitions yet (it may end up unreachable).
    pub fn add_mode(&mut self, mode: impl Into<String>) -> &mut Self {
        self.edges.entry(mode.into()).or_default();
        self
    }

    /// Adds a transition; both endpoints are declared implicitly.
    pub fn add_transition(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> &mut Self {
        let to = to.into();
        self.edges.entry(to.clone()).or_default();
        self.edges.entry(from.into()).or_default().insert(to);
        self
    }

    /// The car's mode machine (paper §V): Normal ↔ Remote Diagnostic, any
    /// mode escalates to Fail-safe, Fail-safe de-escalates to Normal only.
    /// Built from [`CarMode::can_transition_to`], so the analyzer and the
    /// simulated vehicles can never drift apart.
    pub fn car() -> Self {
        let mut g = ModeGraph::new(CarMode::default().name());
        for a in CarMode::ALL {
            for b in CarMode::ALL {
                if a != b && a.can_transition_to(b) {
                    g.add_transition(a.name(), b.name());
                }
            }
        }
        g
    }

    /// The initial mode.
    pub fn initial(&self) -> &str {
        &self.initial
    }

    /// Every declared mode name.
    pub fn modes(&self) -> BTreeSet<String> {
        self.edges.keys().cloned().collect()
    }

    /// Modes reachable from the initial mode (including itself).
    pub fn reachable(&self) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([self.initial.clone()]);
        while let Some(m) = queue.pop_front() {
            if !seen.insert(m.clone()) {
                continue;
            }
            if let Some(next) = self.edges.get(&m) {
                queue.extend(next.iter().cloned());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn car_graph_reaches_all_three_modes() {
        let g = ModeGraph::car();
        let r = g.reachable();
        assert_eq!(g.initial(), "normal");
        assert_eq!(
            r.into_iter().collect::<Vec<_>>(),
            vec!["fail-safe".to_string(), "normal".into(), "remote diagnostic".into()]
        );
    }

    #[test]
    fn declared_but_unlinked_modes_are_unreachable() {
        let mut g = ModeGraph::new("normal");
        g.add_mode("factory");
        g.add_transition("normal", "fail-safe");
        let r = g.reachable();
        assert!(r.contains("normal"));
        assert!(r.contains("fail-safe"));
        assert!(!r.contains("factory"));
        assert!(g.modes().contains("factory"));
    }

    #[test]
    fn reachability_follows_edge_direction() {
        let mut g = ModeGraph::new("a");
        g.add_transition("b", "a"); // wrong way round
        assert!(!g.reachable().contains("b"));
        g.add_transition("a", "b");
        assert!(g.reachable().contains("b"));
    }
}
