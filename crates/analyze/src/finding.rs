//! Finding and report types shared by both analysis layers.
//!
//! Every analysis produces [`Finding`]s — structured, deterministic,
//! machine-renderable. A [`Report`] sorts them (severity first) and renders
//! them as text or JSON; the CLI's exit code is a pure function of the
//! report via [`Report::gates`].

use polsec_sim::json_quote;
use std::fmt;

/// How serious a finding is. The ordering is ascending: `Info < Warning <
/// Error`, so `max_severity` and severity-descending sorts fall out of
/// `Ord`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never gates, even under `--deny-warnings`.
    Info,
    /// Suspicious configuration; gates only under `--deny-warnings`.
    Warning,
    /// A defect; always gates.
    Error,
}

impl Severity {
    /// The lowercase keyword used in text and JSON output.
    pub fn keyword(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// What class of defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// An allow/deny pair over the same request set with equivalent
    /// conditions — the bundle argues with itself.
    Contradiction,
    /// A rule that can never determine any decision because another rule
    /// subsumes it under the active combining strategy.
    ShadowedRule,
    /// A rule guarded by a mode no [`super::ModeGraph`] transition sequence
    /// can ever enter.
    UnreachableMode,
    /// A rule whose condition no request context can satisfy (e.g. an empty
    /// rate window or two different required modes).
    UnsatisfiableCondition,
    /// The analyzer's independent cacheability computation disagrees with
    /// the engine's load-time analysis.
    CacheabilityDisagreement,
    /// A rule (or ladder rung) whose effect is already fully provided by
    /// another — harmless, but worth knowing.
    RedundantRule,
    /// Layer 2: a frame class delivered end-to-end with no enforcing ladder
    /// rung blocking or conditioning it (Table I row-2 shape).
    CoverageHole,
    /// Layer 2: a gateway whitelist entry whose forwarded frames the
    /// downstream policy layer statically always denies.
    DeadWhitelist,
    /// An exported AVC entry that disagrees with a fresh policy answer.
    StaleAvcEntry,
}

impl FindingKind {
    /// The kebab-case key used in text and JSON output.
    pub fn key(self) -> &'static str {
        match self {
            FindingKind::Contradiction => "contradiction",
            FindingKind::ShadowedRule => "shadowed-rule",
            FindingKind::UnreachableMode => "unreachable-mode",
            FindingKind::UnsatisfiableCondition => "unsatisfiable-condition",
            FindingKind::CacheabilityDisagreement => "cacheability-disagreement",
            FindingKind::RedundantRule => "redundant-rule",
            FindingKind::CoverageHole => "coverage-hole",
            FindingKind::DeadWhitelist => "dead-whitelist",
            FindingKind::StaleAvcEntry => "stale-avc-entry",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Defect class.
    pub kind: FindingKind,
    /// How serious it is.
    pub severity: Severity,
    /// The implicated rules (qualified `policy.rule` ids) or ladder rungs.
    pub rule_ids: Vec<String>,
    /// A concrete witness: a request (`entry:x -> asset:y [write]`) or a
    /// frame class (`0x050 B->A external`) exhibiting the defect.
    pub witness: String,
    /// Human-readable explanation of why this is a defect.
    pub explanation: String,
}

impl Finding {
    /// Renders the finding as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let rules: Vec<String> = self.rule_ids.iter().map(|r| json_quote(r)).collect();
        format!(
            "{{\"kind\":{},\"severity\":{},\"rules\":[{}],\"witness\":{},\"explanation\":{}}}",
            json_quote(self.kind.key()),
            json_quote(self.severity.keyword()),
            rules.join(","),
            json_quote(&self.witness),
            json_quote(&self.explanation),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] witness: {}\n    {}",
            self.severity,
            self.kind,
            self.rule_ids.join(", "),
            self.witness,
            self.explanation
        )
    }
}

/// A sorted collection of findings with deterministic rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, sorted by [`Report::sort`].
    pub findings: Vec<Finding>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }

    /// Folds another report in.
    pub fn extend(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }

    /// Sorts findings: severity descending, then kind, rules, witness —
    /// a total, deterministic order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.rule_ids.cmp(&b.rule_ids))
                .then_with(|| a.witness.cmp(&b.witness))
        });
    }

    /// Whether the report has no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Number of findings at exactly `s`.
    pub fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    /// Findings of a given kind (test convenience).
    pub fn of_kind(&self, kind: FindingKind) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }

    /// Whether the report should fail a CI gate: any `Error`, or any
    /// `Warning` when `deny_warnings` is set. `Info` never gates.
    pub fn gates(&self, deny_warnings: bool) -> bool {
        let floor = if deny_warnings {
            Severity::Warning
        } else {
            Severity::Error
        };
        self.max_severity().is_some_and(|s| s >= floor)
    }

    /// Deterministic text rendering (one finding per paragraph), ending in
    /// a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// JSON rendering: `{"counts":{...},"findings":[...]}`.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(Finding::to_json).collect();
        format!(
            "{{\"counts\":{{\"error\":{},\"warning\":{},\"info\":{}}},\"findings\":[{}]}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            findings.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: FindingKind, severity: Severity, rule: &str) -> Finding {
        Finding {
            kind,
            severity,
            rule_ids: vec![rule.to_string()],
            witness: "entry:x -> asset:y [write]".into(),
            explanation: "test".into(),
        }
    }

    #[test]
    fn severity_orders_ascending() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = Report::new();
        r.push(finding(FindingKind::RedundantRule, Severity::Info, "a"));
        r.push(finding(FindingKind::Contradiction, Severity::Error, "b"));
        r.push(finding(FindingKind::ShadowedRule, Severity::Warning, "c"));
        r.sort();
        assert_eq!(r.findings[0].severity, Severity::Error);
        assert_eq!(r.findings[2].severity, Severity::Info);
    }

    #[test]
    fn gate_thresholds() {
        let mut r = Report::new();
        assert!(!r.gates(true), "empty never gates");
        r.push(finding(FindingKind::RedundantRule, Severity::Info, "a"));
        assert!(!r.gates(true), "info never gates");
        r.push(finding(FindingKind::ShadowedRule, Severity::Warning, "b"));
        assert!(!r.gates(false));
        assert!(r.gates(true));
        r.push(finding(FindingKind::Contradiction, Severity::Error, "c"));
        assert!(r.gates(false));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = Report::new();
        r.push(finding(FindingKind::ShadowedRule, Severity::Warning, "p.r"));
        let json = r.to_json();
        assert!(json.starts_with("{\"counts\":{\"error\":0,\"warning\":1,\"info\":0}"));
        assert!(json.contains("\"kind\":\"shadowed-rule\""));
        assert!(json.contains("\"rules\":[\"p.r\"]"));
    }
}
