//! CI gate for static policy analysis.
//!
//! ```text
//! polsec-analyze [OPTIONS] [FILES...]
//!
//!   FILES            policy documents (DSL) to lint, one set per file
//!   --builtin        lint every bundle the repository ships
//!   --fleet          run the Layer-2 ladder coverage analysis
//!   --deny-warnings  warnings also fail the gate (CI mode)
//!   --json PATH      additionally write all findings as JSON
//! ```
//!
//! Exit status: `0` clean (info-level findings do not gate), `1` when the
//! gate fails, `2` on usage, IO or parse errors.

use polsec_analyze::{
    analyze_ladder, analyze_with_engine, AnalysisOptions, FindingKind, LadderSpec, Report,
};
use polsec_car::car_policy;
use polsec_car::security_model::car_table_policy;
use polsec_car::v2x::{rollout_bundle, v2x_shared_policy_set};
use polsec_core::dsl::parse_policies;
use polsec_core::PolicySet;
use polsec_sim::json_quote;
use std::process::ExitCode;

struct Args {
    files: Vec<String>,
    builtin: bool,
    fleet: bool,
    deny_warnings: bool,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        builtin: false,
        fleet: false,
        deny_warnings: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => args.builtin = true,
            "--fleet" => args.fleet = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--json" => {
                args.json = Some(it.next().ok_or("--json requires a path")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option: {other}"));
            }
            file => args.files.push(file.to_string()),
        }
    }
    if args.files.is_empty() && !args.builtin && !args.fleet {
        return Err("nothing to analyze: pass FILES, --builtin or --fleet".into());
    }
    Ok(args)
}

fn usage() -> &'static str {
    "usage: polsec-analyze [--builtin] [--fleet] [--deny-warnings] [--json PATH] [FILES...]"
}

/// One named analysis section (a file, a builtin bundle, or the ladder).
struct Section {
    name: String,
    report: Report,
    /// Printed after the report; used for documented, waived findings.
    note: Option<String>,
    /// Overrides the report-derived gate decision when set.
    gate_override: Option<bool>,
}

fn lint_set(name: &str, set: &PolicySet) -> Section {
    Section {
        name: name.to_string(),
        report: analyze_with_engine(set, &AnalysisOptions::default()),
        note: None,
        gate_override: None,
    }
}

/// Lints the policy mechanically compiled from Table I. The table itself
/// contains one conflicting row pair — rows 15 (R) and 16 (W) both
/// constrain `asset:safety-critical` from `entry:sensors` in normal mode —
/// so the analyzer is *expected* to report exactly that contradiction pair
/// (one per direction). The expected pair is waived; anything else — or a
/// clean report, which would mean the detection regressed — fails the gate.
fn lint_table1_builtin() -> Section {
    let mut s = lint_set(
        "builtin:car-table1",
        &PolicySet::from_policy(car_table_policy()),
    );
    let expected = s.report.findings.len() == 2
        && s.report.findings.iter().all(|f| {
            f.kind == FindingKind::Contradiction
                && f.witness.contains("entry:sensors -> asset:safety-critical")
        });
    if expected {
        s.note = Some(
            "note: the contradiction pair above is the documented Table I \
             rows 15/16 conflict (resolved by deny-overrides at runtime); \
             expected, waived"
                .to_string(),
        );
        s.gate_override = Some(false);
    } else {
        s.note = Some(
            "note: expected exactly the documented Table I rows 15/16 \
             contradiction pair; the analysis or the table policy changed"
                .to_string(),
        );
        s.gate_override = Some(true);
    }
    s
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args().map_err(|e| {
        if e.is_empty() {
            usage().to_string()
        } else {
            format!("{e}\n{}", usage())
        }
    })?;

    let mut sections: Vec<Section> = Vec::new();
    let mut fleet_matrix = String::new();

    for path in &args.files {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let set: PolicySet = parse_policies(&text)
            .map_err(|e| format!("{path}: {e}"))?
            .into_iter()
            .collect();
        sections.push(lint_set(path, &set));
    }

    if args.builtin {
        sections.push(lint_set(
            "builtin:car-baseline",
            &PolicySet::from_policy(car_policy()),
        ));
        sections.push(lint_table1_builtin());
        sections.push(lint_set("builtin:v2x-shared", &v2x_shared_policy_set()));
        sections.push(lint_set(
            "builtin:v2x-rollout",
            &rollout_bundle().policies.into_iter().collect(),
        ));
    }

    if args.fleet {
        let result = analyze_ladder(&LadderSpec::shipped());
        fleet_matrix = result.matrix_text();
        sections.push(Section {
            name: "fleet-ladder".to_string(),
            report: result.report,
            note: None,
            gate_override: None,
        });
    }

    let mut failed = false;
    for s in &sections {
        println!("== {} ==", s.name);
        print!("{}", s.report.to_text());
        if let Some(note) = &s.note {
            println!("{note}");
        }
        println!();
        if s.gate_override.unwrap_or_else(|| s.report.gates(args.deny_warnings)) {
            failed = true;
        }
    }
    if !fleet_matrix.is_empty() {
        println!("== fleet-ladder coverage matrix ==");
        print!("{fleet_matrix}");
    }

    if let Some(path) = &args.json {
        let parts: Vec<String> = sections
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"report\":{}}}",
                    json_quote(&s.name),
                    s.report.to_json()
                )
            })
            .collect();
        let json = format!(
            "{{\"deny_warnings\":{},\"failed\":{},\"sections\":[{}]}}\n",
            args.deny_warnings,
            failed,
            parts.join(",")
        );
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }

    Ok(if failed { ExitCode::from(1) } else { ExitCode::SUCCESS })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
