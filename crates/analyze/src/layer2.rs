//! Layer 2: cross-layer coverage analysis of the fleet enforcement ladder.
//!
//! The fleet simulation (DESIGN.md §7) layers five *enforcing* rungs —
//! gateway whitelist, segment HPEs, per-node HPEs, per-component
//! application policy, and the behavioural anomaly monitor (DESIGN.md
//! §13) — plus one *observational* rung, the shared engine auditing
//! gateway crossings. This module recomputes, statically and
//! without running a single frame, what each rung would do to every
//! interesting frame class: each CAN identifier × traversal direction ×
//! origin class. A class that no enforcing rung blocks or conditions is a
//! **coverage hole** — the Table I row-2 shape, where identifier-based
//! filtering waves through traffic that only content inspection could
//! catch.
//!
//! The analysis works over [`LadderDescription`] — pure data extracted from
//! the same constants and communication matrix the simulator programs into
//! hardware — so a hole found here is a property of the *configuration*,
//! reproducible by any run, not an artefact of one seed.

use crate::finding::{Finding, FindingKind, Report, Severity};
use crate::modes::ModeGraph;
use polsec_car::fleet::{asset_for_id, is_command_id, ladder_description};
use polsec_car::v2x::v2x_shared_policy_set;
use polsec_car::{messages, FleetConfig, FleetEnforcement, LadderDescription};
use polsec_can::CanId;
use polsec_core::{
    Action, CombiningStrategy, Condition, Effect, EntityId, PolicySet, Rule,
};
use std::collections::BTreeSet;
use std::fmt;

/// Which way a frame class traverses the vehicle network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Direction {
    /// Powertrain segment → comfort segment, through the gateway.
    AtoB,
    /// Comfort segment → powertrain segment, through the gateway.
    BtoA,
    /// Stays on the powertrain segment (never reaches the gateway).
    LocalA,
    /// Stays on the comfort segment.
    LocalB,
}

impl Direction {
    fn crosses(self) -> bool {
        matches!(self, Direction::AtoB | Direction::BtoA)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::AtoB => "A->B",
            Direction::BtoA => "B->A",
            Direction::LocalA => "local-A",
            Direction::LocalB => "local-B",
        })
    }
}

/// Who transmits the frame class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OriginClass {
    /// The legitimate sender from the communication matrix.
    Legit,
    /// The external attacker's OBD dongle on the comfort segment — no HPE
    /// interposed on its controller.
    ExternalObd,
    /// A compromised in-vehicle node (the door-lock implant of the fleet
    /// scenario) spoofing an identifier it does not own.
    InsideImplant,
    /// The compromised *legitimate* sender (the sensor node of Table I
    /// row 2): every identifier filter passes its frames by construction —
    /// only payload inspection can constrain this class.
    InsideSensor,
}

impl fmt::Display for OriginClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OriginClass::Legit => "legit",
            OriginClass::ExternalObd => "external-obd",
            OriginClass::InsideImplant => "inside-implant",
            OriginClass::InsideSensor => "inside-sensor",
        })
    }
}

/// What one ladder rung does to a frame class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RungOutcome {
    /// The rung stops the class in every context.
    Blocks,
    /// The rung's verdict depends on runtime context (mode, vehicle state,
    /// rate) — the class is constrained, though not unconditionally dead.
    Conditions,
    /// The rung waves the class through in every context.
    Passes,
    /// The rung is disabled, or the class never reaches it.
    NotApplicable,
}

impl fmt::Display for RungOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RungOutcome::Blocks => "block",
            RungOutcome::Conditions => "cond",
            RungOutcome::Passes => "pass",
            RungOutcome::NotApplicable => "-",
        })
    }
}

impl RungOutcome {
    fn constrains(self) -> bool {
        matches!(self, RungOutcome::Blocks | RungOutcome::Conditions)
    }
}

/// Per-rung outcomes for one frame class, ladder order. `engine_audit` is
/// observational — [`polsec_car::Vehicle`]'s crossing check counts denials
/// but drops nothing — so it never makes a class *covered*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungOutcomes {
    /// Gateway whitelist (crossing classes only).
    pub gateway: RungOutcome,
    /// Segment HPEs on the gateway endpoints (crossing classes only).
    pub segment: RungOutcome,
    /// Per-node HPEs: transmitter egress list and receiver ingress lists.
    pub node: RungOutcome,
    /// Per-component application policy against the shared engine.
    pub app: RungOutcome,
    /// The behavioural anomaly monitor: payload plausibility models on the
    /// consuming node (content-conditioned, so at most `cond`).
    pub anomaly: RungOutcome,
    /// The shared engine's crossing audit (observational).
    pub engine_audit: RungOutcome,
}

/// One row of the coverage matrix: a frame class and what every rung does
/// to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageRow {
    /// The CAN identifier.
    pub id: u16,
    /// Traversal direction.
    pub direction: Direction,
    /// Who transmits it.
    pub origin: OriginClass,
    /// The entry point the policy layer judges the class as (a command's
    /// claimed origin, or the consuming segment boundary for a status).
    pub claimed_entry: &'static str,
    /// What each rung does.
    pub outcomes: RungOutcomes,
    /// Whether some *enforcing* rung blocks or conditions the class.
    pub covered: bool,
}

impl CoverageRow {
    /// The row's finding-witness form: `0x050 B->A external-obd claims
    /// entry:telematics`.
    pub fn witness(&self) -> String {
        format!(
            "0x{:03X} {} {} claims entry:{}",
            self.id, self.direction, self.origin, self.claimed_entry
        )
    }
}

/// Everything Layer 2 analyzes: the ladder artifacts plus the policy model
/// the software rungs judge against.
#[derive(Debug, Clone)]
pub struct LadderSpec {
    /// The per-layer enforcement artifacts.
    pub ladder: LadderDescription,
    /// The policy set the shared engine (and app-policy rung) evaluates.
    pub policy_set: PolicySet,
    /// The engine's combining strategy.
    pub strategy: CombiningStrategy,
    /// The mode machine whose reachable modes the static evaluation
    /// aggregates over.
    pub mode_graph: ModeGraph,
}

impl LadderSpec {
    /// The configuration the fleet actually ships: baseline enforcement
    /// plus the behavioural anomaly rung, the V2X-extended shared policy
    /// set, deny-overrides, the car's mode machine.
    pub fn shipped() -> Self {
        LadderSpec::with_enforcement(FleetEnforcement::shipped())
    }

    /// Shipped artifacts under a different set of enforcement flags — the
    /// knob the rung-removal experiments turn.
    pub fn with_enforcement(enforcement: FleetEnforcement) -> Self {
        let mut cfg = FleetConfig::new(1, 1);
        cfg.enforcement = enforcement;
        LadderSpec {
            ladder: ladder_description(&cfg),
            policy_set: v2x_shared_policy_set(),
            strategy: CombiningStrategy::DenyOverrides,
            mode_graph: ModeGraph::car(),
        }
    }

    /// Replaces the policy set (e.g. to lint a candidate OTA rollout
    /// against the shipped hardware configuration).
    pub fn with_policy_set(mut self, set: PolicySet) -> Self {
        self.policy_set = set;
        self
    }
}

/// The Layer-2 result: findings plus the full coverage matrix.
#[derive(Debug, Clone)]
pub struct LadderReport {
    /// Coverage holes, dead whitelist entries, redundancy notes.
    pub report: Report,
    /// Every analyzed frame class, in enumeration order.
    pub matrix: Vec<CoverageRow>,
}

impl LadderReport {
    /// Renders the coverage matrix as a fixed-width text table.
    pub fn matrix_text(&self) -> String {
        let mut out = String::from(
            "id     direction origin          entry           gw    seg   node  app   anom  audit cov\n",
        );
        for row in &self.matrix {
            out.push_str(&format!(
                "0x{:03X}  {:<9} {:<15} {:<15} {:<5} {:<5} {:<5} {:<5} {:<5} {:<5} {}\n",
                row.id,
                row.direction.to_string(),
                row.origin.to_string(),
                row.claimed_entry,
                row.outcomes.gateway.to_string(),
                row.outcomes.segment.to_string(),
                row.outcomes.node.to_string(),
                row.outcomes.app.to_string(),
                row.outcomes.anomaly.to_string(),
                row.outcomes.engine_audit.to_string(),
                if row.covered { "yes" } else { "NO" },
            ));
        }
        out
    }
}

/// Three-valued truth for static condition evaluation: mode atoms are
/// decidable per hypothetical mode, state and rate atoms are [`Tri::U`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Tri {
    F,
    U,
    T,
}

fn tri_not(t: Tri) -> Tri {
    match t {
        Tri::T => Tri::F,
        Tri::F => Tri::T,
        Tri::U => Tri::U,
    }
}

fn cond_tri(c: &Condition, mode: &str) -> Tri {
    match c {
        Condition::Always => Tri::T,
        Condition::InMode(m) => {
            if m == mode {
                Tri::T
            } else {
                Tri::F
            }
        }
        Condition::StateEquals { .. } | Condition::RateAtMost { .. } => Tri::U,
        Condition::All(cs) => cs.iter().map(|x| cond_tri(x, mode)).min().unwrap_or(Tri::T),
        Condition::AnyOf(cs) => cs.iter().map(|x| cond_tri(x, mode)).max().unwrap_or(Tri::F),
        Condition::Not(inner) => tri_not(cond_tri(inner, mode)),
    }
}

/// What the engine would statically decide for a request in one mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StaticDecision {
    Allow,
    Deny,
    Unknown,
}

fn applicable<'a>(
    set: &'a PolicySet,
    entry: &EntityId,
    asset: &EntityId,
    action: Action,
) -> impl Iterator<Item = &'a Rule> {
    let (entry, asset) = (*entry, *asset);
    set.rules().map(|(_, r)| r).filter(move |r| {
        r.subject().matches(&entry) && r.object().matches(&asset) && r.covers_action(action)
    })
}

/// Kleene evaluation of a deny-overrides pool: `deny`/`allow` are the max
/// truth over the respective rule conditions, `default` breaks the
/// nothing-fires case.
fn combine_deny_overrides(deny: Tri, allow: Tri, default: Effect) -> Option<StaticDecision> {
    match (deny, allow) {
        (Tri::T, _) => Some(StaticDecision::Deny),
        (Tri::F, Tri::T) => Some(StaticDecision::Allow),
        (Tri::F, Tri::F) => None,
        (Tri::F, Tri::U) => match default {
            // allow either fires (Allow) or falls to the default
            Effect::Allow => Some(StaticDecision::Allow),
            Effect::Deny => Some(StaticDecision::Unknown),
        },
        (Tri::U, Tri::F) => match default {
            Effect::Deny => Some(StaticDecision::Deny),
            Effect::Allow => Some(StaticDecision::Unknown),
        },
        (Tri::U, _) => Some(StaticDecision::Unknown),
    }
}

fn static_decide_mode(
    set: &PolicySet,
    strategy: CombiningStrategy,
    entry: &EntityId,
    asset: &EntityId,
    action: Action,
    mode: &str,
) -> StaticDecision {
    let default = set.default_effect();
    let fallback = match default {
        Effect::Allow => StaticDecision::Allow,
        Effect::Deny => StaticDecision::Deny,
    };
    let rules: Vec<&Rule> = applicable(set, entry, asset, action).collect();
    match strategy {
        CombiningStrategy::DenyOverrides => {
            let mut deny = Tri::F;
            let mut allow = Tri::F;
            for r in &rules {
                let t = cond_tri(r.condition(), mode);
                match r.effect() {
                    Effect::Deny => deny = deny.max(t),
                    Effect::Allow => allow = allow.max(t),
                }
            }
            combine_deny_overrides(deny, allow, default).unwrap_or(fallback)
        }
        CombiningStrategy::FirstMatch => {
            for r in &rules {
                match cond_tri(r.condition(), mode) {
                    Tri::T => {
                        return match r.effect() {
                            Effect::Allow => StaticDecision::Allow,
                            Effect::Deny => StaticDecision::Deny,
                        }
                    }
                    Tri::U => return StaticDecision::Unknown,
                    Tri::F => {}
                }
            }
            fallback
        }
        CombiningStrategy::PriorityOrder => {
            let mut priorities: Vec<i32> = rules.iter().map(|r| r.priority()).collect();
            priorities.sort_unstable_by(|a, b| b.cmp(a));
            priorities.dedup();
            for p in priorities {
                let mut deny = Tri::F;
                let mut allow = Tri::F;
                for r in rules.iter().filter(|r| r.priority() == p) {
                    let t = cond_tri(r.condition(), mode);
                    match r.effect() {
                        Effect::Deny => deny = deny.max(t),
                        Effect::Allow => allow = allow.max(t),
                    }
                }
                match (deny, allow) {
                    (Tri::T, _) => return StaticDecision::Deny,
                    (Tri::F, Tri::T) => return StaticDecision::Allow,
                    (Tri::F, Tri::F) => {} // tier silent; fall through
                    _ => return StaticDecision::Unknown,
                }
            }
            fallback
        }
    }
}

/// Aggregates the per-mode static decisions over the reachable modes into
/// a rung outcome.
fn policy_outcome(spec: &LadderSpec, entry: &str, asset: &str, action: Action) -> RungOutcome {
    let entry = EntityId::new("entry", entry);
    let asset = EntityId::new("asset", asset);
    let mut any_allow = false;
    let mut any_deny = false;
    let mut any_unknown = false;
    for mode in spec.mode_graph.reachable() {
        match static_decide_mode(&spec.policy_set, spec.strategy, &entry, &asset, action, &mode) {
            StaticDecision::Allow => any_allow = true,
            StaticDecision::Deny => any_deny = true,
            StaticDecision::Unknown => any_unknown = true,
        }
    }
    if any_unknown || (any_allow && any_deny) {
        RungOutcome::Conditions
    } else if any_deny {
        RungOutcome::Blocks
    } else {
        RungOutcome::Passes
    }
}

/// The policy-layer view of a frame class, mirroring the simulator's
/// crossing check: commands are a `Write` from their claimed origin,
/// statuses a boundary `Read` by the consuming segment.
fn policy_view(id: u16, direction: Direction, claimed_entry: &'static str) -> (&'static str, Action) {
    if is_command_id(id) {
        (claimed_entry, Action::Write)
    } else {
        match direction {
            Direction::BtoA | Direction::LocalA => ("telematics", Action::Read),
            Direction::AtoB | Direction::LocalB => ("infotainment-ui", Action::Read),
        }
    }
}

struct RowInput {
    id: u16,
    direction: Direction,
    origin: OriginClass,
    /// A command's claimed origin; for statuses, the boundary reader.
    claimed_entry: &'static str,
    /// The transmitting node, if it carries a node HPE (`None` = the
    /// attacker's dongle, which has no interposer).
    transmitter: Option<&'static str>,
}

fn in_list(list: &[u16], id: u16) -> bool {
    list.contains(&id)
}

fn evaluate_row(spec: &LadderSpec, input: &RowInput) -> CoverageRow {
    let ladder = &spec.ladder;
    let enf = ladder.enforcement;
    let crosses = input.direction.crosses();

    let gateway = if !crosses || !enf.gateway_whitelist {
        RungOutcome::NotApplicable
    } else {
        let list = match input.direction {
            Direction::AtoB => &ladder.cross_a_to_b,
            _ => &ladder.cross_b_to_a,
        };
        if in_list(list, input.id) {
            RungOutcome::Passes
        } else {
            RungOutcome::Blocks
        }
    };

    let segment = if !crosses || !enf.segment_hpe {
        RungOutcome::NotApplicable
    } else {
        let can_id = CanId::Standard(input.id);
        // Crossing A→B leaves through endpoint A's read gate and enters
        // through endpoint B's write gate; B→A is the mirror image.
        let through = match input.direction {
            Direction::AtoB => {
                ladder.segment_lists_a.read().approves(can_id)
                    && ladder.segment_lists_b.write().approves(can_id)
            }
            _ => {
                ladder.segment_lists_b.read().approves(can_id)
                    && ladder.segment_lists_a.write().approves(can_id)
            }
        };
        if through {
            RungOutcome::Passes
        } else {
            RungOutcome::Blocks
        }
    };

    let node = if !enf.node_hpe {
        RungOutcome::NotApplicable
    } else {
        let can_id = CanId::Standard(input.id);
        let lists_of = |name: &str| {
            ladder
                .node_lists
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, l)| l)
        };
        // Egress: the transmitter's own write gate (the dongle has none).
        let egress_ok = match input.transmitter {
            Some(name) => lists_of(name).is_some_and(|l| l.write().approves(can_id)),
            None => true,
        };
        // Ingress: the frame reaches an application only if some node in
        // the destination segment read-approves the identifier.
        let dest_nodes: &[&'static str] = match input.direction {
            Direction::BtoA | Direction::LocalA => &ladder.powertrain_nodes,
            Direction::AtoB | Direction::LocalB => &ladder.comfort_nodes,
        };
        let ingress_ok = dest_nodes
            .iter()
            .any(|&n| lists_of(n).is_some_and(|l| l.read().approves(can_id)));
        if egress_ok && ingress_ok {
            RungOutcome::Passes
        } else {
            RungOutcome::Blocks
        }
    };

    let (entry, action) = policy_view(input.id, input.direction, input.claimed_entry);
    let policy = asset_for_id(input.id).map(|asset| policy_outcome(spec, entry, asset, action));
    let app = match policy {
        Some(outcome) if enf.app_policy => outcome,
        _ => RungOutcome::NotApplicable,
    };
    // The behavioural monitor corroborates crash payloads on the consuming
    // EV-ECU against wheel-speed/proximity evidence. It judges content, so
    // it conditions the class rather than blocking it outright — and it is
    // the only rung that can constrain the compromised-legitimate-sender
    // class at all.
    let anomaly = if enf.anomaly
        && input.id == messages::SENSOR_CRASH
        && matches!(input.direction, Direction::LocalA | Direction::BtoA)
    {
        RungOutcome::Conditions
    } else {
        RungOutcome::NotApplicable
    };
    // The shared engine only ever sees gateway crossings, and its check is
    // observational: `check_crossing` counts `policy.denied` but drops
    // nothing, so the rung never contributes to coverage.
    let engine_audit = match policy {
        Some(outcome) if crosses => outcome,
        _ => RungOutcome::NotApplicable,
    };

    let covered = [gateway, segment, node, app, anomaly]
        .iter()
        .any(|o| o.constrains());

    CoverageRow {
        id: input.id,
        direction: input.direction,
        origin: input.origin,
        claimed_entry: entry,
        outcomes: RungOutcomes {
            gateway,
            segment,
            node,
            app,
            anomaly,
            engine_audit,
        },
        covered,
    }
}

/// The fleet scenario's outside attack kinds: identifier, claimed origin
/// (mirroring `OutsideAttack::frame`), and the victim node the command
/// targets.
fn external_attack_profile(id: u16) -> Option<(&'static str, &'static str)> {
    match id {
        messages::ECU_COMMAND => Some(("telematics", "ev-ecu")),
        messages::EPS_COMMAND => Some(("diagnostics", "eps")),
        messages::MODEM_CONTROL => Some(("telematics", "telematics")),
        messages::ALARM_CONTROL => Some(("infotainment-ui", "safety-critical")),
        _ => None,
    }
}

fn enumerate_classes(ladder: &LadderDescription) -> Vec<RowInput> {
    let mut rows = Vec::new();
    // Legitimate crossings, with their matrix transmitter.
    let transmitter_of = |id: u16, nodes: &[&'static str]| {
        nodes
            .iter()
            .copied()
            .find(|n| messages::legitimate_writes(n).contains(&id))
    };
    for &id in &ladder.cross_a_to_b {
        rows.push(RowInput {
            id,
            direction: Direction::AtoB,
            origin: OriginClass::Legit,
            claimed_entry: "infotainment-ui",
            transmitter: transmitter_of(id, &ladder.powertrain_nodes),
        });
    }
    for &id in &ladder.cross_b_to_a {
        rows.push(RowInput {
            id,
            direction: Direction::BtoA,
            origin: OriginClass::Legit,
            claimed_entry: "telematics",
            transmitter: transmitter_of(id, &ladder.comfort_nodes),
        });
    }
    // Outside attacks: the OBD dongle sits on the comfort segment, so the
    // class crosses only if its victim is a powertrain node.
    for &id in &ladder.attack_ids {
        let Some((claimed, victim)) = external_attack_profile(id) else {
            continue;
        };
        let direction = if ladder.powertrain_nodes.contains(&victim) {
            Direction::BtoA
        } else {
            Direction::LocalB
        };
        rows.push(RowInput {
            id,
            direction,
            origin: OriginClass::ExternalObd,
            claimed_entry: claimed,
            transmitter: None,
        });
    }
    // The inside implant: compromised door-lock firmware spoofing the
    // propulsion-disable command with a forged safety-critical origin, on
    // its own (powertrain) segment.
    if ladder.attack_ids.contains(&messages::ECU_COMMAND) {
        rows.push(RowInput {
            id: messages::ECU_COMMAND,
            direction: Direction::LocalA,
            origin: OriginClass::InsideImplant,
            claimed_entry: "safety-critical",
            transmitter: Some("door-locks"),
        });
    }
    // The compromised legitimate sender (Table I row 2): the sensor node
    // broadcasting a forged crash payload under its own identifier. Every
    // identifier-based rung passes this class by construction — it exists
    // in the matrix regardless of the attack roster, because it is a
    // property of identifier filtering itself.
    rows.push(RowInput {
        id: messages::SENSOR_CRASH,
        direction: Direction::LocalA,
        origin: OriginClass::InsideSensor,
        claimed_entry: "sensors",
        transmitter: Some("sensors"),
    });
    rows
}

/// Checks whether the segment-HPE pair admits exactly the same identifier
/// sets as the gateway whitelist — if so, either rung is individually
/// redundant with the other (removing one provably changes nothing).
fn segment_gateway_redundancy(ladder: &LadderDescription) -> Option<Finding> {
    let enf = ladder.enforcement;
    if !enf.gateway_whitelist || !enf.segment_hpe {
        return None;
    }
    let set = |ids: &[u16]| ids.iter().copied().collect::<BTreeSet<u16>>();
    let intersect = |a: Vec<u16>, b: Vec<u16>| -> BTreeSet<u16> {
        let b: BTreeSet<u16> = b.into_iter().collect();
        a.into_iter().filter(|id| b.contains(id)).collect()
    };
    let seg_ab = intersect(
        ladder.segment_lists_a.read().covered_standard_ids(),
        ladder.segment_lists_b.write().covered_standard_ids(),
    );
    let seg_ba = intersect(
        ladder.segment_lists_b.read().covered_standard_ids(),
        ladder.segment_lists_a.write().covered_standard_ids(),
    );
    if seg_ab == set(&ladder.cross_a_to_b) && seg_ba == set(&ladder.cross_b_to_a) {
        Some(Finding {
            kind: FindingKind::RedundantRule,
            severity: Severity::Info,
            rule_ids: vec!["gateway-whitelist".into(), "segment-hpe".into()],
            witness: format!(
                "both admit exactly {{{}}} A->B and {{{}}} B->A",
                hex_list(&ladder.cross_a_to_b),
                hex_list(&ladder.cross_b_to_a)
            ),
            explanation: "the segment HPE pair admits exactly the identifier sets the \
                          gateway whitelist forwards; at the identifier level either rung \
                          alone provides the same crossing coverage (defence in depth, \
                          not extra coverage)"
                .into(),
        })
    } else {
        None
    }
}

fn hex_list(ids: &[u16]) -> String {
    let parts: Vec<String> = ids.iter().map(|id| format!("0x{id:03X}")).collect();
    parts.join(", ")
}

/// Runs the full Layer-2 analysis over a ladder specification.
pub fn analyze_ladder(spec: &LadderSpec) -> LadderReport {
    let mut report = Report::new();
    let mut matrix = Vec::new();
    let enf = spec.ladder.enforcement;
    let enabled_rungs = || {
        let mut rungs = Vec::new();
        if enf.gateway_whitelist {
            rungs.push("gateway-whitelist".to_string());
        }
        if enf.segment_hpe {
            rungs.push("segment-hpe".to_string());
        }
        if enf.node_hpe {
            rungs.push("node-hpe".to_string());
        }
        if enf.app_policy {
            rungs.push("app-policy".to_string());
        }
        if enf.anomaly {
            rungs.push("anomaly".to_string());
        }
        rungs
    };

    for input in enumerate_classes(&spec.ladder) {
        let row = evaluate_row(spec, &input);

        if !row.covered && row.origin != OriginClass::Legit {
            report.push(Finding {
                kind: FindingKind::CoverageHole,
                severity: Severity::Error,
                rule_ids: enabled_rungs(),
                witness: row.witness(),
                explanation: format!(
                    "attack traffic ({}) is delivered end-to-end: no enforcing ladder \
                     rung blocks or conditions identifier 0x{:03X} on this path",
                    row.origin, row.id
                ),
            });
        }
        if !row.covered && row.origin == OriginClass::Legit && is_command_id(row.id) {
            report.push(Finding {
                kind: FindingKind::CoverageHole,
                severity: Severity::Info,
                rule_ids: enabled_rungs(),
                witness: row.witness(),
                explanation: format!(
                    "command identifier 0x{:03X} crosses unconditioned: a compromised \
                     legitimate sender can spoof its values past every identifier \
                     filter (Table I row-2 limitation — content inspection would be \
                     required)",
                    row.id
                ),
            });
        }

        // Dead whitelist entries: the gateway forwards the identifier, but
        // the policy model statically denies the resulting boundary request
        // in every reachable mode — the entry can only ever feed denials.
        if enf.gateway_whitelist
            && row.origin == OriginClass::Legit
            && !is_command_id(row.id)
            && row.outcomes.engine_audit == RungOutcome::Blocks
        {
            let asset = asset_for_id(row.id).unwrap_or("?");
            report.push(Finding {
                kind: FindingKind::DeadWhitelist,
                severity: Severity::Warning,
                rule_ids: vec!["gateway-whitelist".into()],
                witness: format!("0x{:03X} {}", row.id, row.direction),
                explanation: format!(
                    "the whitelist forwards 0x{:03X}, but the policy model denies \
                     entry:{} reading asset:{} in every reachable mode — the entry is \
                     dead weight, or the policy is missing a rule",
                    row.id, row.claimed_entry, asset
                ),
            });
        }

        matrix.push(row);
    }

    if let Some(f) = segment_gateway_redundancy(&spec.ladder) {
        report.push(f);
    }
    report.sort();
    LadderReport { report, matrix }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polsec_car::car_policy;

    fn decide(set: &PolicySet, entry: &str, asset: &str, action: Action, mode: &str) -> StaticDecision {
        static_decide_mode(
            set,
            CombiningStrategy::DenyOverrides,
            &EntityId::new("entry", entry),
            &EntityId::new("asset", asset),
            action,
            mode,
        )
    }

    #[test]
    fn static_decisions_match_the_car_policy() {
        let set = PolicySet::from_policy(car_policy());
        // ecu-no-remote: unconditional deny beats nothing
        assert_eq!(
            decide(&set, "telematics", "ev-ecu", Action::Write, "normal"),
            StaticDecision::Deny
        );
        // ecu-read: unconditional allow for anyone
        assert_eq!(
            decide(&set, "obd", "ev-ecu", Action::Read, "normal"),
            StaticDecision::Allow
        );
        // eps-service: mode-gated
        assert_eq!(
            decide(&set, "diagnostics", "eps", Action::Write, "remote diagnostic"),
            StaticDecision::Allow
        );
        assert_eq!(
            decide(&set, "diagnostics", "eps", Action::Write, "normal"),
            StaticDecision::Deny
        );
        // tracking-control: state-gated -> statically unknown
        assert_eq!(
            decide(&set, "telematics", "3g-4g-wifi", Action::Write, "normal"),
            StaticDecision::Unknown
        );
        // nothing matches -> default deny
        assert_eq!(
            decide(&set, "infotainment-ui", "safety-critical", Action::Write, "normal"),
            StaticDecision::Deny
        );
    }

    #[test]
    fn policy_outcomes_aggregate_over_modes() {
        let spec = LadderSpec::shipped();
        // always denied in every mode
        assert_eq!(
            policy_outcome(&spec, "unknown", "ev-ecu", Action::Write),
            RungOutcome::Blocks
        );
        // allowed everywhere
        assert_eq!(
            policy_outcome(&spec, "infotainment-ui", "ev-ecu", Action::Read),
            RungOutcome::Passes
        );
        // allowed only in remote diagnostic mode -> conditions
        assert_eq!(
            policy_outcome(&spec, "diagnostics", "eps", Action::Write),
            RungOutcome::Conditions
        );
        // state-gated -> conditions
        assert_eq!(
            policy_outcome(&spec, "telematics", "3g-4g-wifi", Action::Write),
            RungOutcome::Conditions
        );
    }

    #[test]
    fn shipped_ladder_has_no_errors_or_warnings() {
        let result = analyze_ladder(&LadderSpec::shipped());
        assert_eq!(result.report.count(Severity::Error), 0, "{}", result.report.to_text());
        assert_eq!(result.report.count(Severity::Warning), 0, "{}", result.report.to_text());
        // every attack class is covered
        for row in result.matrix.iter().filter(|r| r.origin != OriginClass::Legit) {
            assert!(row.covered, "uncovered: {}", row.witness());
        }
        // and the gateway/segment identifier-level redundancy is noted
        assert_eq!(result.report.of_kind(FindingKind::RedundantRule).len(), 1);
    }

    #[test]
    fn matrix_text_renders_every_row() {
        let result = analyze_ladder(&LadderSpec::shipped());
        let text = result.matrix_text();
        assert_eq!(text.lines().count(), result.matrix.len() + 1);
        assert!(text.contains("inside-implant"));
        assert!(text.contains("inside-sensor"));
        assert!(text.contains("0x050"));
    }

    #[test]
    fn only_the_anomaly_rung_constrains_the_inside_sensor_class() {
        let result = analyze_ladder(&LadderSpec::shipped());
        let row = result
            .matrix
            .iter()
            .find(|r| r.origin == OriginClass::InsideSensor)
            .expect("the Table I row-2 class is always enumerated");
        assert!(row.covered);
        assert_eq!(row.outcomes.anomaly, RungOutcome::Conditions);
        for (rung, outcome) in [
            ("gateway", row.outcomes.gateway),
            ("segment", row.outcomes.segment),
            ("node", row.outcomes.node),
            ("app", row.outcomes.app),
        ] {
            assert!(!outcome.constrains(), "{rung} must not constrain the class");
        }
    }
}
