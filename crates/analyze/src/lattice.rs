//! The subsumption lattice over matchers and the conservative condition
//! implication relation.
//!
//! Shadowing analysis needs a *sound* "rule B matches everything rule A
//! matches" test: false negatives only make the analyzer quieter, never
//! wrong. Pattern subsumption is exact for every pair the DSL can express
//! except prefix-vs-range mixtures, which conservatively report `false`.

use polsec_core::{ActionSet, Condition, EntityMatcher, Pattern};

/// Whether every entity name matched by `narrow` is also matched by
/// `broad`. Sound, not complete.
pub fn pattern_subsumes(narrow: &Pattern, broad: &Pattern) -> bool {
    match (narrow, broad) {
        (_, Pattern::Any) => true,
        // An exact name is a single point: just ask the broad pattern.
        (Pattern::Exact(n), b) => b.matches(n),
        (Pattern::Prefix(p), Pattern::Prefix(q)) => p.starts_with(q.as_str()),
        (Pattern::IdRange { lo, hi }, Pattern::IdRange { lo: lo2, hi: hi2 }) => {
            lo2 <= lo && hi <= hi2
        }
        _ => false,
    }
}

/// Whether every entity matched by `narrow` is also matched by `broad`:
/// the broad side's namespace must be a wildcard or equal, and its pattern
/// must subsume.
pub fn matcher_subsumes(narrow: &EntityMatcher, broad: &EntityMatcher) -> bool {
    let ns_ok = match broad.namespace() {
        None => true,
        Some(b) => narrow.namespace() == Some(b),
    };
    ns_ok && pattern_subsumes(narrow.pattern(), broad.pattern())
}

/// Whether `a`'s actions are a subset of `b`'s.
pub fn actions_subset(a: ActionSet, b: ActionSet) -> bool {
    a.iter().all(|x| b.contains(x))
}

/// Whether `a` and `b` share at least one action.
pub fn actions_overlap(a: ActionSet, b: ActionSet) -> bool {
    a.iter().any(|x| b.contains(x))
}

/// Conservative condition implication: `true` means every context
/// satisfying `c1` satisfies `c2`. `false` means "could not prove it" —
/// the relation is sound for shadowing (a missed implication only
/// suppresses a finding).
pub fn condition_implies(c1: &Condition, c2: &Condition) -> bool {
    if matches!(c2, Condition::Always) || c1 == c2 {
        return true;
    }
    if let (
        Condition::RateAtMost { key: k1, max_per_sec: m1 },
        Condition::RateAtMost { key: k2, max_per_sec: m2 },
    ) = (c1, c2)
    {
        return k1 == k2 && m1 <= m2;
    }
    // A conjunction implies anything one of its conjuncts implies.
    if let Condition::All(xs) = c1 {
        if xs.iter().any(|x| condition_implies(x, c2)) {
            return true;
        }
    }
    // A disjunction implies c2 iff every arm does.
    if let Condition::AnyOf(xs) = c1 {
        return !xs.is_empty() && xs.iter().all(|x| condition_implies(x, c2));
    }
    match c2 {
        Condition::AnyOf(ys) => ys.iter().any(|y| condition_implies(c1, y)),
        Condition::All(ys) => !ys.is_empty() && ys.iter().all(|y| condition_implies(c1, y)),
        _ => false,
    }
}

/// Whether the two conditions are provably equivalent (mutual implication).
pub fn condition_equivalent(c1: &Condition, c2: &Condition) -> bool {
    condition_implies(c1, c2) && condition_implies(c2, c1)
}

/// A concrete entity name matched by the pattern — the most specific
/// representative, used to synthesise witness requests.
pub fn witness_name(p: &Pattern) -> String {
    match p {
        Pattern::Any => "any".into(),
        Pattern::Exact(n) => n.clone(),
        Pattern::Prefix(pre) => format!("{pre}0"),
        Pattern::IdRange { lo, .. } => lo.to_string(),
    }
}

/// A concrete `namespace:name` string matched by the matcher.
pub fn witness_entity(m: &EntityMatcher) -> String {
    format!("{}:{}", m.namespace().unwrap_or("*"), witness_name(m.pattern()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polsec_core::Action;

    fn exact(ns: &str, n: &str) -> EntityMatcher {
        EntityMatcher::new(ns, Pattern::Exact(n.into()))
    }

    #[test]
    fn pattern_lattice_basics() {
        let any = Pattern::Any;
        let exact = Pattern::Exact("ev-ecu".into());
        let prefix = Pattern::Prefix("ev-".into());
        let range = Pattern::IdRange { lo: 16, hi: 31 };
        assert!(pattern_subsumes(&exact, &any));
        assert!(pattern_subsumes(&exact, &exact));
        assert!(pattern_subsumes(&exact, &prefix), "ev-ecu starts with ev-");
        assert!(!pattern_subsumes(&prefix, &exact));
        assert!(pattern_subsumes(&prefix, &Pattern::Prefix("e".into())));
        assert!(!pattern_subsumes(&Pattern::Prefix("e".into()), &prefix));
        assert!(pattern_subsumes(&range, &Pattern::IdRange { lo: 0, hi: 31 }));
        assert!(!pattern_subsumes(&range, &Pattern::IdRange { lo: 17, hi: 31 }));
        assert!(pattern_subsumes(&Pattern::Exact("20".into()), &range));
        assert!(!pattern_subsumes(&any, &exact));
    }

    #[test]
    fn matcher_namespace_rules() {
        let diag = exact("entry", "diagnostics");
        let any_ns = EntityMatcher::any_namespace(Pattern::Any);
        let entry_any = EntityMatcher::new("entry", Pattern::Any);
        let asset_any = EntityMatcher::new("asset", Pattern::Any);
        assert!(matcher_subsumes(&diag, &any_ns));
        assert!(matcher_subsumes(&diag, &entry_any));
        assert!(!matcher_subsumes(&diag, &asset_any));
        assert!(!matcher_subsumes(&any_ns, &entry_any), "wildcard ns is broader");
    }

    #[test]
    fn action_sets() {
        let rw = ActionSet::of(&[Action::Read, Action::Write]);
        let r = ActionSet::only(Action::Read);
        assert!(actions_subset(r, rw));
        assert!(!actions_subset(rw, r));
        assert!(actions_overlap(rw, r));
        assert!(!actions_overlap(r, ActionSet::only(Action::Write)));
    }

    #[test]
    fn implication_rules() {
        let normal = Condition::InMode("normal".into());
        let crash = Condition::StateEquals { key: "crash".into(), value: "true".into() };
        let both = Condition::All(vec![normal.clone(), crash.clone()]);
        let either = Condition::AnyOf(vec![normal.clone(), crash.clone()]);
        assert!(condition_implies(&normal, &Condition::Always));
        assert!(condition_implies(&both, &normal));
        assert!(condition_implies(&both, &crash));
        assert!(!condition_implies(&normal, &both));
        assert!(condition_implies(&normal, &either));
        assert!(condition_implies(&either, &Condition::Always));
        assert!(!condition_implies(&either, &normal));
        // rate windows: tighter implies looser
        let r5 = Condition::RateAtMost { key: "k".into(), max_per_sec: 5 };
        let r9 = Condition::RateAtMost { key: "k".into(), max_per_sec: 9 };
        assert!(condition_implies(&r5, &r9));
        assert!(!condition_implies(&r9, &r5));
        assert!(condition_equivalent(&both, &both));
        assert!(!condition_equivalent(&both, &normal));
    }

    #[test]
    fn witnesses_are_concrete() {
        assert_eq!(witness_entity(&exact("entry", "diagnostics")), "entry:diagnostics");
        assert_eq!(
            witness_entity(&EntityMatcher::new("entry", Pattern::Prefix("sensor-".into()))),
            "entry:sensor-0"
        );
        assert_eq!(
            witness_entity(&EntityMatcher::any_namespace(Pattern::IdRange { lo: 7, hi: 9 })),
            "*:7"
        );
        assert_eq!(witness_entity(&EntityMatcher::anything()), "*:any");
    }
}
