//! Layer 1: static analysis of one compiled policy set.
//!
//! Everything here runs over the abstract syntax only — no frame is ever
//! evaluated. The analyses:
//!
//! * **Shadowing** — a rule that can never determine a decision because
//!   another rule subsumes it under the active combining strategy
//!   (deny-wins, declaration order, or priority).
//! * **Contradiction** — an allow/deny pair over provably identical
//!   request sets with equivalent conditions: the bundle argues with
//!   itself, and deny-overrides silently picks a side.
//! * **Satisfiability** — dead conditions (empty rate windows, two
//!   required modes) and conditions only satisfiable in modes the
//!   [`ModeGraph`] can never reach.
//! * **Cacheability cross-check** — an independent recomputation of each
//!   rule's decision-cache safety, compared against the engine's load-time
//!   analysis ([`PolicyEngine::rule_cacheability`]); any disagreement is
//!   an `Error`, because a wrong `cache_safe` bit means stale decisions.

use crate::finding::{Finding, FindingKind, Report, Severity};
use crate::lattice::{
    actions_overlap, actions_subset, condition_equivalent, condition_implies, matcher_subsumes,
    witness_entity,
};
use crate::modes::ModeGraph;
use crate::sat::{mentioned_modes, satisfiable};
use polsec_core::dsl::{print_condition, print_rule};
use polsec_core::{CombiningStrategy, Condition, Effect, PolicyEngine, PolicySet, Rule};
use std::collections::BTreeSet;

/// Knobs for [`analyze_set`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// The combining strategy the engine will evaluate the set under;
    /// shadowing semantics depend on it.
    pub strategy: CombiningStrategy,
    /// Mode machine for reachability analysis; `None` skips the
    /// unreachable-mode check (plain satisfiability still runs).
    pub mode_graph: Option<ModeGraph>,
    /// Whether to emit `Info`-level redundancy findings.
    pub flag_redundant: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            strategy: CombiningStrategy::DenyOverrides,
            mode_graph: Some(ModeGraph::car()),
            flag_redundant: true,
        }
    }
}

/// One rule with its qualified name and position in the flattened set.
struct RuleRef<'a> {
    qualified: String,
    rule: &'a Rule,
}

fn flatten(set: &PolicySet) -> Vec<RuleRef<'_>> {
    set.rules()
        .map(|(policy, rule)| RuleRef {
            qualified: format!("{policy}.{}", rule.id()),
            rule,
        })
        .collect()
}

/// Whether every request rule `a` applies to is also one rule `b` applies
/// to (matchers, actions and condition all subsumed).
fn subsumed(a: &Rule, b: &Rule) -> bool {
    matcher_subsumes(a.subject(), b.subject())
        && matcher_subsumes(a.object(), b.object())
        && actions_subset(a.actions(), b.actions())
        && condition_implies(a.condition(), b.condition())
}

fn witness_request(r: &Rule) -> String {
    let actions: Vec<String> = r.actions().iter().map(|a| a.to_string()).collect();
    format!(
        "{} -> {} [{}]",
        witness_entity(r.subject()),
        witness_entity(r.object()),
        actions.join(", ")
    )
}

/// Runs every Layer-1 analysis over the set.
pub fn analyze_set(set: &PolicySet, opts: &AnalysisOptions) -> Report {
    let rules = flatten(set);
    let mut report = Report::new();
    check_satisfiability(&rules, opts, &mut report);
    check_pairs(&rules, opts, &mut report);
    report.sort();
    report
}

fn check_satisfiability(rules: &[RuleRef<'_>], opts: &AnalysisOptions, report: &mut Report) {
    for r in rules {
        let c = r.rule.condition();
        if c == &Condition::Always {
            continue;
        }
        if !satisfiable(c, None) {
            let rate_note = if c.rate_keys().is_empty() {
                ""
            } else {
                " (the rate window is empty)"
            };
            report.push(Finding {
                kind: FindingKind::UnsatisfiableCondition,
                severity: Severity::Warning,
                rule_ids: vec![r.qualified.clone()],
                witness: witness_request(r.rule),
                explanation: format!(
                    "no evaluation context can satisfy `{}`{rate_note}; the rule is dead",
                    print_condition(c)
                ),
            });
            continue;
        }
        if let Some(graph) = &opts.mode_graph {
            let reachable = graph.reachable();
            if !satisfiable(c, Some(&reachable)) {
                let unreachable: Vec<String> = mentioned_modes(c)
                    .into_iter()
                    .filter(|m| !reachable.contains(m))
                    .collect();
                report.push(Finding {
                    kind: FindingKind::UnreachableMode,
                    severity: Severity::Warning,
                    rule_ids: vec![r.qualified.clone()],
                    witness: witness_request(r.rule),
                    explanation: format!(
                        "condition `{}` requires mode(s) [{}] that no transition sequence \
                         from \"{}\" can enter; the rule can never apply",
                        print_condition(c),
                        unreachable.join(", "),
                        graph.initial()
                    ),
                });
            }
        }
    }
}

fn check_pairs(rules: &[RuleRef<'_>], opts: &AnalysisOptions, report: &mut Report) {
    // Pairs already reported as contradictions are excluded from the
    // shadowing pass: the Error subsumes the Warning.
    let mut contradicted: BTreeSet<(usize, usize)> = BTreeSet::new();

    for i in 0..rules.len() {
        for j in (i + 1)..rules.len() {
            let (a, b) = (&rules[i], &rules[j]);
            let opposite = a.rule.effect() != b.rule.effect();
            let tie_breaks_deny = match opts.strategy {
                CombiningStrategy::DenyOverrides => true,
                CombiningStrategy::PriorityOrder => a.rule.priority() == b.rule.priority(),
                // First-match order resolves the conflict deterministically;
                // the pair surfaces as a shadow instead.
                CombiningStrategy::FirstMatch => false,
            };
            if opposite
                && tie_breaks_deny
                && a.rule.subject() == b.rule.subject()
                && a.rule.object() == b.rule.object()
                && actions_overlap(a.rule.actions(), b.rule.actions())
                && condition_equivalent(a.rule.condition(), b.rule.condition())
            {
                contradicted.insert((i, j));
                let (allow, deny) = if a.rule.effect() == Effect::Allow {
                    (a, b)
                } else {
                    (b, a)
                };
                report.push(Finding {
                    kind: FindingKind::Contradiction,
                    severity: Severity::Error,
                    rule_ids: vec![allow.qualified.clone(), deny.qualified.clone()],
                    witness: witness_request(allow.rule),
                    explanation: format!(
                        "`{}` and `{}` match identical requests under equivalent conditions \
                         with opposite effects; deny wins silently, so one of them does not \
                         mean what it says",
                        print_rule(allow.rule),
                        print_rule(deny.rule)
                    ),
                });
            }
        }
    }

    for (i, dead) in rules.iter().enumerate() {
        for (j, by) in rules.iter().enumerate() {
            if i == j || contradicted.contains(&(i.min(j), i.max(j))) {
                continue;
            }
            if !subsumed(dead.rule, by.rule) {
                continue;
            }
            let same_effect = dead.rule.effect() == by.rule.effect();
            let shadows = match opts.strategy {
                // Deny always wins: a subsumed allow is dead; a subsumed
                // same-effect rule is merely redundant.
                CombiningStrategy::DenyOverrides => {
                    dead.rule.effect() == Effect::Allow && by.rule.effect() == Effect::Deny
                }
                // The earlier rule always fires first.
                CombiningStrategy::FirstMatch => j < i && !same_effect,
                // A higher-priority subsumer always outranks; an equal-
                // priority deny wins the tie against an allow.
                CombiningStrategy::PriorityOrder => {
                    !same_effect
                        && (by.rule.priority() > dead.rule.priority()
                            || (by.rule.priority() == dead.rule.priority()
                                && by.rule.effect() == Effect::Deny))
                }
            };
            if shadows {
                report.push(Finding {
                    kind: FindingKind::ShadowedRule,
                    severity: Severity::Warning,
                    rule_ids: vec![dead.qualified.clone(), by.qualified.clone()],
                    witness: witness_request(dead.rule),
                    explanation: format!(
                        "`{}` can never take effect: `{}` applies to every request it \
                         applies to and wins under {}",
                        print_rule(dead.rule),
                        print_rule(by.rule),
                        opts.strategy
                    ),
                });
                continue;
            }
            // Redundancy: same effect, fully covered. For mutually
            // subsuming (equivalent) rules only the later one is reported.
            let redundant = same_effect
                && match opts.strategy {
                    CombiningStrategy::FirstMatch => j < i,
                    _ => !subsumed(by.rule, dead.rule) || j < i,
                };
            if opts.flag_redundant && redundant {
                report.push(Finding {
                    kind: FindingKind::RedundantRule,
                    severity: Severity::Info,
                    rule_ids: vec![dead.qualified.clone(), by.qualified.clone()],
                    witness: witness_request(dead.rule),
                    explanation: format!(
                        "`{}` adds nothing: `{}` already produces the same effect for \
                         every request it covers",
                        print_rule(dead.rule),
                        print_rule(by.rule)
                    ),
                });
            }
        }
    }
}

/// The analyzer's own cacheability computation, deliberately written
/// against the atom families rather than delegating to
/// [`Condition::is_cache_safe`]: a decision may be cached on a
/// `(subject, object, action, mode)` key iff its condition reads nothing
/// outside that key — state and rate atoms do.
fn independent_cache_safe(c: &Condition) -> bool {
    match c {
        Condition::Always | Condition::InMode(_) => true,
        Condition::StateEquals { .. } | Condition::RateAtMost { .. } => false,
        Condition::All(cs) | Condition::AnyOf(cs) => cs.iter().all(independent_cache_safe),
        Condition::Not(inner) => independent_cache_safe(inner),
    }
}

/// Cross-checks the engine's load-time cacheability analysis against an
/// independent recomputation over `set` (which must be the set the engine
/// was loaded with). Any disagreement — a verdict flip, a missing rule, an
/// extra rule — is an `Error`: a wrongly cache-safe rule would let the
/// decision cache serve stale answers past a state or rate change.
pub fn cacheability_crosscheck(set: &PolicySet, engine: &PolicyEngine) -> Report {
    let mut report = Report::new();
    let expected: Vec<(String, bool)> = set
        .rules()
        .map(|(policy, rule)| {
            (
                format!("{policy}.{}", rule.id()),
                independent_cache_safe(rule.condition()),
            )
        })
        .collect();
    let actual = engine.rule_cacheability();
    if expected.len() != actual.len() {
        report.push(Finding {
            kind: FindingKind::CacheabilityDisagreement,
            severity: Severity::Error,
            rule_ids: Vec::new(),
            witness: format!("{} rules in set, {} in engine", expected.len(), actual.len()),
            explanation: "the engine's rule table does not cover the policy set; the \
                          cacheability report cannot be trusted"
                .into(),
        });
        return report;
    }
    for ((qualified, want), got) in expected.iter().zip(actual.iter()) {
        if qualified != got.qualified || *want != got.cache_safe {
            report.push(Finding {
                kind: FindingKind::CacheabilityDisagreement,
                severity: Severity::Error,
                rule_ids: vec![qualified.clone()],
                witness: format!(
                    "analyzer says cache_safe={want}, engine says {} for {}",
                    got.cache_safe, got.qualified
                ),
                explanation: "the engine's load-time cacheability analysis disagrees with \
                              an independent recomputation; a wrongly cache-safe rule \
                              serves stale decisions across state/rate changes"
                    .into(),
            });
        }
    }
    report.sort();
    report
}

/// Runs [`analyze_set`] plus the cacheability cross-check against a
/// freshly built engine.
pub fn analyze_with_engine(set: &PolicySet, opts: &AnalysisOptions) -> Report {
    let engine = PolicyEngine::new(set.clone()).with_strategy(opts.strategy);
    let mut report = analyze_set(set, opts);
    report.extend(cacheability_crosscheck(set, &engine));
    report.sort();
    report
}

/// Builds a validator for [`polsec_core::LoadMode::Strict`]: the Layer-1
/// analyses run over the incoming set and any `Error` finding (or, with
/// `deny_warnings`, any `Warning`) vetoes the load with the rendered
/// report.
pub fn strict_validator(
    opts: AnalysisOptions,
    deny_warnings: bool,
) -> impl Fn(&PolicySet) -> Result<(), String> {
    move |set| {
        let report = analyze_with_engine(set, &opts);
        if report.gates(deny_warnings) {
            Err(report.to_text())
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polsec_core::dsl::parse_policies;

    fn analyze_src(src: &str, opts: &AnalysisOptions) -> Report {
        let set: PolicySet = parse_policies(src).unwrap().into_iter().collect();
        analyze_with_engine(&set, opts)
    }

    #[test]
    fn single_clean_policy_has_no_findings() {
        let report = analyze_src(
            r#"policy "p" version 1 {
                default deny;
                allow read on asset:ev-ecu from entry:* as reads;
                allow write on asset:ev-ecu from entry:diagnostics
                    when mode == "remote diagnostic" as service;
            }"#,
            &AnalysisOptions::default(),
        );
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn deny_overrides_shadowing_detected() {
        let report = analyze_src(
            r#"policy "p" version 1 {
                default deny;
                deny write on asset:ev-ecu from entry:* as no-writes;
                allow write on asset:ev-ecu from entry:diagnostics as service;
            }"#,
            &AnalysisOptions::default(),
        );
        let shadows = report.of_kind(FindingKind::ShadowedRule);
        assert_eq!(shadows.len(), 1);
        assert_eq!(shadows[0].rule_ids, vec!["p.service", "p.no-writes"]);
        assert_eq!(shadows[0].witness, "entry:diagnostics -> asset:ev-ecu [write]");
    }

    #[test]
    fn first_match_shadowing_is_order_sensitive() {
        let src = r#"policy "p" version 1 {
            default deny;
            deny write on asset:ev-ecu from entry:* as broad;
            allow write on asset:ev-ecu from entry:diagnostics as narrow;
        }"#;
        let fm = AnalysisOptions {
            strategy: CombiningStrategy::FirstMatch,
            ..AnalysisOptions::default()
        };
        let report = analyze_src(src, &fm);
        assert_eq!(report.of_kind(FindingKind::ShadowedRule).len(), 1);

        // Swapped order: the narrow allow fires first, so nothing shadows.
        let swapped = r#"policy "p" version 1 {
            default deny;
            allow write on asset:ev-ecu from entry:diagnostics as narrow;
            deny write on asset:ev-ecu from entry:* as broad;
        }"#;
        let report = analyze_src(swapped, &fm);
        assert!(report.of_kind(FindingKind::ShadowedRule).is_empty());
    }

    #[test]
    fn priority_order_shadowing() {
        let src = r#"policy "p" version 1 {
            default deny;
            allow write on asset:ev-ecu from entry:diagnostics as narrow;
            deny write on asset:ev-ecu from entry:* priority 5 as broad;
        }"#;
        let po = AnalysisOptions {
            strategy: CombiningStrategy::PriorityOrder,
            ..AnalysisOptions::default()
        };
        let report = analyze_src(src, &po);
        let shadows = report.of_kind(FindingKind::ShadowedRule);
        assert_eq!(shadows.len(), 1);
        assert_eq!(shadows[0].rule_ids[0], "p.narrow");
    }

    #[test]
    fn contradiction_is_an_error_and_suppresses_the_shadow() {
        let report = analyze_src(
            r#"policy "p" version 1 {
                default deny;
                allow write on asset:door-locks from entry:telematics as remote-open;
                deny write on asset:door-locks from entry:telematics as no-remote-open;
            }"#,
            &AnalysisOptions::default(),
        );
        assert_eq!(report.of_kind(FindingKind::Contradiction).len(), 1);
        assert!(report.of_kind(FindingKind::ShadowedRule).is_empty());
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn unreachable_mode_and_unsat_are_distinguished() {
        let report = analyze_src(
            r#"policy "p" version 1 {
                default deny;
                allow write on asset:ev-ecu from entry:diagnostics
                    when mode == "factory" as factory-flash;
                allow write on asset:eps from entry:diagnostics
                    when rate(cmd) <= 5 && !(rate(cmd) <= 10) as dead-window;
            }"#,
            &AnalysisOptions::default(),
        );
        let unreachable = report.of_kind(FindingKind::UnreachableMode);
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].rule_ids, vec!["p.factory-flash"]);
        assert!(unreachable[0].explanation.contains("factory"));
        let unsat = report.of_kind(FindingKind::UnsatisfiableCondition);
        assert_eq!(unsat.len(), 1);
        assert_eq!(unsat[0].rule_ids, vec!["p.dead-window"]);
        assert!(unsat[0].explanation.contains("rate window is empty"));
    }

    #[test]
    fn redundancy_is_info_only() {
        let report = analyze_src(
            r#"policy "p" version 1 {
                default deny;
                allow read on asset:ev-ecu from entry:* as broad-read;
                allow read on asset:ev-ecu from entry:sensors as narrow-read;
            }"#,
            &AnalysisOptions::default(),
        );
        let red = report.of_kind(FindingKind::RedundantRule);
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].severity, Severity::Info);
        assert_eq!(red[0].rule_ids[0], "p.narrow-read");
        assert!(!report.gates(true), "info never gates");
    }

    #[test]
    fn cross_policy_shadowing_uses_qualified_ids() {
        let report = analyze_src(
            r#"policy "base" version 1 {
                default deny;
                deny write on asset:ev-ecu from entry:* as lockdown;
            }
            policy "extra" version 1 {
                default deny;
                allow write on asset:ev-ecu from entry:diagnostics as service;
            }"#,
            &AnalysisOptions::default(),
        );
        let shadows = report.of_kind(FindingKind::ShadowedRule);
        assert_eq!(shadows.len(), 1);
        assert_eq!(shadows[0].rule_ids, vec!["extra.service", "base.lockdown"]);
    }

    #[test]
    fn cacheability_crosscheck_agrees_on_the_car_policy() {
        let set = PolicySet::from_policy(polsec_car::car_policy());
        let engine = PolicyEngine::new(set.clone());
        assert!(cacheability_crosscheck(&set, &engine).is_clean());
    }

    #[test]
    fn cacheability_crosscheck_flags_a_mismatched_engine() {
        let set = PolicySet::from_policy(polsec_car::car_policy());
        let other = PolicyEngine::from_policy(
            polsec_core::dsl::parse_policy(
                r#"policy "tiny" version 1 { allow read on asset:x from entry:*; }"#,
            )
            .unwrap(),
        );
        let report = cacheability_crosscheck(&set, &other);
        assert_eq!(report.of_kind(FindingKind::CacheabilityDisagreement).len(), 1);
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }
}
