//! Lint exported AVC entries against fresh policy answers.
//!
//! The MAC layer's access-vector cache serves verdicts without consulting
//! the policy. [`polsec_mac::Avc::export_entries`] decompiles the live
//! cache for audit; this lint replays every exported key through
//! [`polsec_mac::MacPolicy::allows`] and reports any disagreement. A stale
//! entry is an `Error`: it means cached verdicts — possibly grants — that
//! the loaded policy no longer stands behind (a missed generation bump, a
//! corrupted entry, or an incomplete reload).

use crate::finding::{Finding, FindingKind, Report, Severity};
use polsec_mac::{AvcExportEntry, MacPolicy};

/// Compares each exported cache entry's verdict with a fresh policy
/// lookup; any divergence is a [`FindingKind::StaleAvcEntry`] error.
pub fn lint_avc(policy: &MacPolicy, entries: &[AvcExportEntry]) -> Report {
    let mut report = Report::new();
    for e in entries {
        let fresh = policy.allows(
            e.source.as_str(),
            e.target.as_str(),
            e.class.as_str(),
            e.perm.as_str(),
        );
        if fresh != e.vector.allowed {
            report.push(Finding {
                kind: FindingKind::StaleAvcEntry,
                severity: Severity::Error,
                rule_ids: Vec::new(),
                witness: format!(
                    "{} -> {} ({}:{})",
                    e.source.as_str(),
                    e.target.as_str(),
                    e.class.as_str(),
                    e.perm.as_str()
                ),
                explanation: format!(
                    "the cache serves allowed={} but the loaded policy answers \
                     allowed={fresh}; a stale vector means enforcement decisions the \
                     policy no longer stands behind",
                    e.vector.allowed
                ),
            });
        }
    }
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use polsec_mac::{Avc, PolicyModule, TeRule};

    fn tiny_policy() -> MacPolicy {
        let mut module = PolicyModule::new("tiny", 1);
        module
            .declare_type("ecu_t")
            .declare_type("sensor_t")
            .add_allow(TeRule::allow("ecu_t", "sensor_t", "can_msg", &["read"]));
        let mut p = MacPolicy::new();
        p.load_module(module).expect("tiny module links");
        p
    }

    #[test]
    fn consistent_cache_lints_clean() {
        let policy = tiny_policy();
        let generation = policy.generation();
        let mut avc = Avc::new();
        avc.insert("ecu_t", "sensor_t", "can_msg", "read", generation, true);
        avc.insert("ecu_t", "sensor_t", "can_msg", "write", generation, false);
        let entries = avc.export_entries(generation);
        assert_eq!(entries.len(), 2);
        assert!(lint_avc(&policy, &entries).is_clean());
    }

    #[test]
    fn diverging_entry_is_an_error() {
        let policy = tiny_policy();
        let generation = policy.generation();
        let mut avc = Avc::new();
        avc.insert("ecu_t", "sensor_t", "can_msg", "read", generation, true);
        let entries = avc.export_entries(generation);
        // Lint against a policy that no longer grants the cached vector —
        // the shape of a reload that forgot to bump the generation.
        let empty = MacPolicy::new();
        let report = lint_avc(&empty, &entries);
        assert_eq!(report.of_kind(FindingKind::StaleAvcEntry).len(), 1);
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert!(report.findings[0].witness.contains("ecu_t -> sensor_t"));
    }

    #[test]
    fn empty_export_is_clean() {
        let policy = tiny_policy();
        let avc = Avc::new();
        assert!(lint_avc(&policy, &avc.export_entries(0)).is_clean());
    }
}
