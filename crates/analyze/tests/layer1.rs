//! Layer-1 integration tests: fixture KATs, shipped-bundle regressions,
//! strict OTA load gating, and a solver soundness property.

use polsec_analyze::{
    analyze_set, analyze_with_engine, satisfiable, strict_validator, AnalysisOptions,
    FindingKind, Severity,
};
use polsec_car::security_model::car_table_policy;
use polsec_car::v2x::{rollout_bundle, v2x_shared_policy_set};
use polsec_car::car_policy;
use polsec_core::dsl::parse_policies;
use polsec_core::{
    Condition, EvalContext, LoadMode, PolicyBundle, PolicyEngine, PolicyError, PolicySet,
    RateSource,
};
use proptest::prelude::*;

fn analyze_fixture(src: &str) -> polsec_analyze::Report {
    let set: PolicySet = parse_policies(src)
        .expect("fixture parses")
        .into_iter()
        .collect();
    analyze_with_engine(&set, &AnalysisOptions::default())
}

// --- Fixture KATs: each seeded defect is detected, exactly. ---

#[test]
fn kat_shadowed_deny() {
    let report = analyze_fixture(include_str!("../fixtures/shadowed_deny.polsec"));
    let shadows = report.of_kind(FindingKind::ShadowedRule);
    assert_eq!(shadows.len(), 1, "{}", report.to_text());
    assert_eq!(shadows[0].rule_ids, vec!["p.service", "p.no-writes"]);
    assert_eq!(report.max_severity(), Some(Severity::Warning));
    assert!(report.gates(true) && !report.gates(false));
}

#[test]
fn kat_contradiction() {
    let report = analyze_fixture(include_str!("../fixtures/contradiction.polsec"));
    let contradictions = report.of_kind(FindingKind::Contradiction);
    assert_eq!(contradictions.len(), 1, "{}", report.to_text());
    assert_eq!(
        contradictions[0].rule_ids,
        vec!["p.remote-open", "p.no-remote-open"]
    );
    assert!(report.of_kind(FindingKind::ShadowedRule).is_empty());
    assert!(report.gates(false), "contradictions always gate");
}

#[test]
fn kat_mode_unreachable() {
    let report = analyze_fixture(include_str!("../fixtures/mode_unreachable.polsec"));
    let unreachable = report.of_kind(FindingKind::UnreachableMode);
    assert_eq!(unreachable.len(), 1, "{}", report.to_text());
    assert_eq!(unreachable[0].rule_ids, vec!["p.factory-flash"]);
    assert!(unreachable[0].explanation.contains("factory"));
}

#[test]
fn kat_dead_rate() {
    let report = analyze_fixture(include_str!("../fixtures/dead_rate.polsec"));
    let unsat = report.of_kind(FindingKind::UnsatisfiableCondition);
    assert_eq!(unsat.len(), 1, "{}", report.to_text());
    assert_eq!(unsat[0].rule_ids, vec!["p.dead-window"]);
    assert!(unsat[0].explanation.contains("rate window is empty"));
}

#[test]
fn kat_clean() {
    let report = analyze_fixture(include_str!("../fixtures/clean.polsec"));
    assert!(report.is_clean(), "{}", report.to_text());
}

// --- Shipped-bundle regressions: what the repo ships stays lint-clean. ---

#[test]
fn shipped_car_policy_is_lint_clean() {
    let set = PolicySet::from_policy(car_policy());
    let report = analyze_with_engine(&set, &AnalysisOptions::default());
    assert!(report.is_clean(), "{}", report.to_text());
}

#[test]
fn shipped_v2x_bundles_are_lint_clean() {
    for (name, set) in [
        ("v2x-shared", v2x_shared_policy_set()),
        (
            "v2x-rollout",
            rollout_bundle().policies.into_iter().collect(),
        ),
    ] {
        let report = analyze_with_engine(&set, &AnalysisOptions::default());
        assert!(report.is_clean(), "{name}: {}", report.to_text());
    }
}

/// The paper's Table I itself contains one conflicting row pair — rows 15
/// (R) and 16 (W) both constrain `safety-critical` from `sensors` in
/// normal mode. The runtime resolves it with deny-overrides
/// (`tests/end_to_end.rs` documents the dynamic behaviour); the analyzer
/// must rediscover the same conflict *statically*, as exactly one
/// contradiction pair per direction and nothing else.
#[test]
fn table1_policy_contradiction_is_detected_statically() {
    let set = PolicySet::from_policy(car_table_policy());
    let report = analyze_with_engine(&set, &AnalysisOptions::default());
    let contradictions = report.of_kind(FindingKind::Contradiction);
    assert_eq!(contradictions.len(), 2, "{}", report.to_text());
    for f in &contradictions {
        assert!(
            f.witness.contains("entry:sensors -> asset:safety-critical"),
            "unexpected contradiction witness: {}",
            f.witness
        );
    }
    assert_eq!(report.count(Severity::Error), 2);
}

// --- Strict OTA loads: a defective bundle is vetoed before the swap. ---

#[test]
fn strict_load_vetoes_a_shadowed_bundle_and_keeps_the_old_policies() {
    let key = b"fleet-ota-key";
    let mut engine = PolicyEngine::new(PolicySet::from_policy(car_policy()));
    let generation = engine.cache_generation();

    let bad = parse_policies(include_str!("../fixtures/shadowed_deny.polsec"))
        .expect("fixture parses");
    let signed = PolicyBundle::new(7, "bad ota", bad).sign(key);

    let validator = strict_validator(AnalysisOptions::default(), true);
    let err = engine
        .load_bundle(&signed, key, LoadMode::Strict(&validator))
        .expect_err("the shadowed bundle must be vetoed");
    match err {
        PolicyError::AnalysisRejected { detail } => {
            assert!(detail.contains("shadowed-rule"), "{detail}");
        }
        other => panic!("expected AnalysisRejected, got {other:?}"),
    }
    // The veto happened before the swap: policies and cache generation kept.
    assert_eq!(engine.cache_generation(), generation);
    assert_eq!(
        engine.policy_set().policies().len(),
        1,
        "engine still holds the original car policy"
    );

    // Without --deny-warnings a warning-only bundle loads fine.
    let lenient = strict_validator(AnalysisOptions::default(), false);
    let version = engine
        .load_bundle(&signed, key, LoadMode::Strict(&lenient))
        .expect("warnings do not veto a permissive strict load");
    assert_eq!(version, 7);
}

#[test]
fn strict_load_accepts_the_shipped_rollout_bundle() {
    let key = b"fleet-ota-key";
    let mut engine = PolicyEngine::new(PolicySet::from_policy(car_policy()));
    let signed = rollout_bundle().sign(key);
    let validator = strict_validator(AnalysisOptions::default(), true);
    engine
        .load_bundle(&signed, key, LoadMode::Strict(&validator))
        .expect("the shipped rollout bundle passes the strict gate");
}

// --- Solver soundness: a condition some real context satisfies can never
// --- be reported unsatisfiable.

struct FixedRates(f64);

impl RateSource for FixedRates {
    fn rate_per_sec(&self, _key: &str) -> f64 {
        self.0
    }
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}"
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    let leaf = prop_oneof![
        Just(Condition::Always),
        arb_name().prop_map(Condition::InMode),
        (arb_name(), arb_name()).prop_map(|(key, value)| Condition::StateEquals { key, value }),
        (arb_name(), 0u32..100)
            .prop_map(|(key, max_per_sec)| Condition::RateAtMost { key, max_per_sec }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Condition::All),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Condition::AnyOf),
            inner.prop_map(|c| Condition::Not(Box::new(c))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn satisfied_conditions_are_never_reported_unsat(
        cond in arb_condition(),
        mode in arb_name(),
        state in prop::collection::vec((arb_name(), arb_name()), 0..4),
        rate in 0u32..120,
    ) {
        let mut ctx = EvalContext::new().with_mode(&mode);
        for (k, v) in &state {
            ctx = ctx.with_state(k.clone(), v.clone());
        }
        let rates = FixedRates(rate as f64);
        if cond.eval_with(&ctx, &rates) {
            prop_assert!(
                satisfiable(&cond, None),
                "context-satisfied condition reported unsat: {cond:?}"
            );
        }
    }

    #[test]
    fn unsat_rules_are_always_flagged(
        key in arb_name(),
        lo in 0u32..50,
        gap in 1u32..50,
    ) {
        // rate <= lo && rate > lo+gap is empty for every gap >= 1.
        let cond = Condition::All(vec![
            Condition::RateAtMost { key: key.clone(), max_per_sec: lo },
            Condition::Not(Box::new(Condition::RateAtMost {
                key,
                max_per_sec: lo + gap,
            })),
        ]);
        prop_assert!(!satisfiable(&cond, None));
    }
}

// analyze_set (without an engine) agrees with analyze_with_engine on the
// non-cacheability findings for the shipped policy.
#[test]
fn analyze_set_alone_matches_the_engine_run_on_shipped_policy() {
    let set = PolicySet::from_policy(car_policy());
    let plain = analyze_set(&set, &AnalysisOptions::default());
    assert!(plain.is_clean(), "{}", plain.to_text());
}
