//! Layer-2 integration tests: rung-removal experiments over the fleet
//! enforcement ladder. Each experiment removes rungs from the shipped
//! configuration and asserts the analyzer reports exactly the coverage
//! holes that removal opens — the static counterpart of the paper's
//! Table I attack rows.

use polsec_analyze::{
    analyze_ladder, Direction, FindingKind, LadderSpec, OriginClass, RungOutcome, Severity,
};
use polsec_car::messages::{
    ECU_COMMAND, EPS_COMMAND, MODEM_CONTROL, SENSOR_CRASH, V2X_HEALTH, V2X_LEAD,
};
use polsec_car::{car_policy, FleetEnforcement};
use polsec_core::PolicySet;

/// The attack rows (id, direction) of every `Error` coverage hole.
fn error_holes(spec: &LadderSpec) -> Vec<(u16, Direction, OriginClass)> {
    let result = analyze_ladder(spec);
    let mut holes: Vec<_> = result
        .matrix
        .iter()
        .filter(|row| row.origin != OriginClass::Legit && !row.covered)
        .map(|row| (row.id, row.direction, row.origin))
        .collect();
    holes.sort_by_key(|(id, d, _)| (*id, format!("{d}")));
    // Cross-check against the findings themselves.
    assert_eq!(
        result.report.of_kind(FindingKind::CoverageHole).len(),
        holes.len(),
        "matrix and findings disagree:\n{}",
        result.report.to_text()
    );
    holes
}

#[test]
fn shipped_fleet_covers_every_attack_row() {
    let result = analyze_ladder(&LadderSpec::shipped());
    assert_eq!(result.report.count(Severity::Error), 0, "{}", result.report.to_text());
    assert_eq!(result.report.count(Severity::Warning), 0, "{}", result.report.to_text());
    for row in &result.matrix {
        if row.origin != OriginClass::Legit {
            assert!(row.covered, "attack row uncovered: {}", row.witness());
        }
    }
}

#[test]
fn removing_the_node_hpes_opens_local_holes() {
    // The node HPE is the only rung that sees segment-local traffic: an
    // inside implant (compromised door-locks node spoofing the safety
    // system) and local modem takeover frames never cross the gateway.
    let spec = LadderSpec::with_enforcement(FleetEnforcement {
        node_hpe: false,
        ..FleetEnforcement::shipped()
    });
    let holes = error_holes(&spec);
    assert_eq!(
        holes,
        vec![
            (ECU_COMMAND, Direction::LocalA, OriginClass::InsideImplant),
            (MODEM_CONTROL, Direction::LocalB, OriginClass::ExternalObd),
        ],
        "node-HPE removal must expose exactly the two local attack rows"
    );
}

#[test]
fn gateway_and_segment_rungs_are_individually_redundant() {
    // The redundancy finding claims either crossing rung alone suffices;
    // removing one (but not both) must therefore open no Error hole, with
    // the removed rung showing NotApplicable across the matrix.
    for (name, enforcement) in [
        (
            "gateway off",
            FleetEnforcement { gateway_whitelist: false, ..FleetEnforcement::shipped() },
        ),
        (
            "segment off",
            FleetEnforcement { segment_hpe: false, ..FleetEnforcement::shipped() },
        ),
    ] {
        let spec = LadderSpec::with_enforcement(enforcement);
        let result = analyze_ladder(&spec);
        assert_eq!(
            result.report.count(Severity::Error),
            0,
            "{name}: {}",
            result.report.to_text()
        );
        for row in &result.matrix {
            let removed = if enforcement.gateway_whitelist {
                row.outcomes.segment
            } else {
                row.outcomes.gateway
            };
            assert_eq!(removed, RungOutcome::NotApplicable, "{name}: {}", row.witness());
        }
        // With only one crossing rung left the redundancy note disappears.
        assert!(
            result.report.of_kind(FindingKind::RedundantRule).is_empty(),
            "{name}: redundancy requires both rungs"
        );
    }
}

#[test]
fn removing_both_crossing_rungs_opens_the_spoofed_command_holes() {
    // With neither the gateway whitelist nor the segment HPEs, spoofed
    // powertrain commands from the OBD dongle cross into segment A
    // unhindered; only the alarm frame is still stopped by the victim
    // node's HPE.
    let spec = LadderSpec::with_enforcement(FleetEnforcement {
        gateway_whitelist: false,
        segment_hpe: false,
        ..FleetEnforcement::shipped()
    });
    let holes = error_holes(&spec);
    assert_eq!(
        holes,
        vec![
            (ECU_COMMAND, Direction::BtoA, OriginClass::ExternalObd),
            (EPS_COMMAND, Direction::BtoA, OriginClass::ExternalObd),
        ]
    );
}

#[test]
fn the_unprotected_fleet_leaks_every_attack_row() {
    let holes = error_holes(&LadderSpec::with_enforcement(FleetEnforcement::none()));
    assert_eq!(
        holes.len(),
        6,
        "all four external rows plus the implant and the compromised sensor leak"
    );
    assert!(holes.contains(&(ECU_COMMAND, Direction::LocalA, OriginClass::InsideImplant)));
    assert!(holes.contains(&(SENSOR_CRASH, Direction::LocalA, OriginClass::InsideSensor)));
}

#[test]
fn removing_the_anomaly_rung_reopens_table_i_row_2() {
    // The rung-removal experiment the anomaly layer exists for: baseline
    // enforcement (= shipped minus the behavioural rung) passes the
    // compromised sensor's forged crash payload through every identifier
    // filter — the exact Table I row-2 hole — and nothing else changes.
    let spec = LadderSpec::with_enforcement(FleetEnforcement {
        anomaly: false,
        ..FleetEnforcement::shipped()
    });
    let holes = error_holes(&spec);
    assert_eq!(
        holes,
        vec![(SENSOR_CRASH, Direction::LocalA, OriginClass::InsideSensor)],
        "only the row-2 class depends on the anomaly rung"
    );
}

#[test]
fn coverage_holes_name_the_enabled_rungs() {
    let spec = LadderSpec::with_enforcement(FleetEnforcement {
        node_hpe: false,
        ..FleetEnforcement::shipped()
    });
    let result = analyze_ladder(&spec);
    let holes = result.report.of_kind(FindingKind::CoverageHole);
    assert!(!holes.is_empty());
    for f in holes {
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(
            f.rule_ids,
            vec!["gateway-whitelist", "segment-hpe", "anomaly"],
            "a hole lists exactly the rungs that were on and still missed it"
        );
    }
}

#[test]
fn whitelist_entries_dead_under_the_policy_are_flagged() {
    // Replace the fleet's shared policy set (car + v2x-boundary) with the
    // bare car policy: the gateway still forwards the V2X identifiers
    // B->A, but the policy layer — observed via the engine-audit column —
    // now statically denies them in every reachable mode. Those whitelist
    // entries are dead weight worth a warning.
    let spec = LadderSpec::shipped().with_policy_set(PolicySet::from_policy(car_policy()));
    let result = analyze_ladder(&spec);
    let dead = result.report.of_kind(FindingKind::DeadWhitelist);
    let mut ids: Vec<String> = dead.iter().map(|f| f.witness.clone()).collect();
    ids.sort();
    assert_eq!(
        ids,
        vec![
            format!("0x{V2X_LEAD:03X} B->A"),
            format!("0x{V2X_HEALTH:03X} B->A"),
        ],
        "{}",
        result.report.to_text()
    );
    for f in dead {
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.rule_ids, vec!["gateway-whitelist"]);
    }
    // Dropping the v2x policy opens no coverage hole — these are status
    // broadcasts, not commands.
    assert_eq!(result.report.count(Severity::Error), 0, "{}", result.report.to_text());
}

#[test]
fn matrix_rows_are_deterministic_across_runs() {
    let a = analyze_ladder(&LadderSpec::shipped());
    let b = analyze_ladder(&LadderSpec::shipped());
    assert_eq!(a.matrix_text(), b.matrix_text());
    assert_eq!(a.report.to_json(), b.report.to_json());
}
