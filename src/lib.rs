//! # polsec — policy-based security modelling and enforcement for embedded architectures
//!
//! A full reproduction of Hagan, Siddiqui & Sezer, *"Policy-Based Security
//! Modelling and Enforcement Approach for Emerging Embedded Architectures"*
//! (IEEE SOCC 2018), as a Rust workspace. This facade crate re-exports every
//! subsystem:
//!
//! * [`model`] — STRIDE/DREAD application threat modelling (Fig. 1),
//! * [`policy`] — the policy language, engine, compiler and signed updates
//!   (the paper's contribution),
//! * [`can`] — the ISO 11898 CAN substrate,
//! * [`hpe`] — the hardware-based policy engine (Fig. 4),
//! * [`mac`] — SELinux-style software enforcement,
//! * [`car`] — the connected-car case study (Fig. 2, Table I),
//! * [`sim`] — the discrete-event simulation substrate,
//! * [`analyze`] — static policy analysis (shadowing, reachability,
//!   cross-layer coverage holes), the `polsec-analyze` CI gate.
//!
//! Start with `examples/quickstart.rs`, then `examples/connected_car.rs`
//! for the full case study and `examples/policy_update.rs` for the paper's
//! headline post-deployment-update story.
//!
//! # Example
//!
//! ```
//! use polsec::policy::dsl::parse_policy;
//! use polsec::policy::{AccessRequest, Action, EntityId, EvalContext, PolicyEngine};
//!
//! let engine = PolicyEngine::from_policy(parse_policy(
//!     r#"policy "demo" version 1 {
//!         default deny;
//!         allow read on asset:ev-ecu from entry:*;
//!     }"#,
//! )?);
//! let request = AccessRequest::new(
//!     EntityId::new("entry", "sensors"),
//!     EntityId::new("asset", "ev-ecu"),
//!     Action::Read,
//! );
//! assert!(engine.decide(&request, &EvalContext::new()).is_allow());
//! # Ok::<(), polsec::policy::PolicyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Static policy analysis (`polsec-analyze`).
pub use polsec_analyze as analyze;
/// The CAN bus substrate (`polsec-can`).
pub use polsec_can as can;
/// The connected-car case study (`polsec-car`).
pub use polsec_car as car;
/// The hardware policy engine (`polsec-hpe`).
pub use polsec_hpe as hpe;
/// SELinux-style mandatory access control (`polsec-mac`).
pub use polsec_mac as mac;
/// Threat modelling (`polsec-model`).
pub use polsec_model as model;
/// The policy core (`polsec-core`).
pub use polsec_core as policy;
/// Discrete-event simulation substrate (`polsec-sim`).
pub use polsec_sim as sim;
